// Edge cases and robustness: degenerate shapes, extreme configurations,
// and input conditions the engine must survive gracefully.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/local_interpreter.h"
#include "apps/runner.h"
#include "data/synthetic.h"

namespace dmac {
namespace {

TEST(EdgeCaseTest, OneByOneMatrices) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {1, 1}, 1.0);
  Mat c = pb.Var("C");
  pb.Assign(c, a.mm(a) + a * a - a);
  pb.Output(c);
  LocalMatrix adata = ConstantMatrix({1, 1}, 1, 3.0f);
  Bindings bindings{{"A", &adata}};
  RunConfig config;
  config.block_size = 1;
  auto run = RunProgram(pb.Build(), bindings, config);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_FLOAT_EQ(run->result.matrices.at("C").At(0, 0), 9 + 9 - 3);
}

TEST(EdgeCaseTest, VectorTimesMatrix) {
  // 1xN times NxM: the PageRank shape.
  ProgramBuilder pb;
  Mat v = pb.Load("v", {1, 30}, 1.0);
  Mat m = pb.Load("M", {30, 12}, 0.5);
  Mat c = pb.Var("C");
  pb.Assign(c, v.mm(m));
  pb.Output(c);
  LocalMatrix vdata = SyntheticDense(1, 30, 8, 1);
  LocalMatrix mdata = SyntheticSparse(30, 12, 0.5, 8, 2);
  Bindings bindings{{"v", &vdata}, {"M", &mdata}};
  RunConfig config;
  config.block_size = 8;
  auto run = RunProgram(pb.Build(), bindings, config);
  ASSERT_TRUE(run.ok()) << run.status();
  auto expected = vdata.Multiply(mdata);
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(run->result.matrices.at("C").ApproxEqual(*expected, 1e-3));
}

TEST(EdgeCaseTest, BlockSizeLargerThanMatrix) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {5, 7}, 1.0);
  Mat c = pb.Var("C");
  pb.Assign(c, a.t().mm(a));
  pb.Output(c);
  LocalMatrix adata = SyntheticDense(5, 7, 64, 3);
  Bindings bindings{{"A", &adata}};
  RunConfig config;
  config.block_size = 64;  // one block for everything
  config.num_workers = 4;  // more workers than blocks
  auto run = RunProgram(pb.Build(), bindings, config);
  ASSERT_TRUE(run.ok()) << run.status();
  auto expected = adata.Transposed().Multiply(adata);
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(run->result.matrices.at("C").ApproxEqual(*expected, 1e-3));
}

TEST(EdgeCaseTest, ManyMoreWorkersThanBlocks) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {16, 16}, 0.5);
  Mat c = pb.Var("C");
  pb.Assign(c, a.mm(a));
  pb.Output(c);
  LocalMatrix adata = SyntheticSparse(16, 16, 0.5, 8, 5);
  Bindings bindings{{"A", &adata}};
  RunConfig config;
  config.block_size = 8;
  config.num_workers = 13;  // only 2 block rows exist
  auto run = RunProgram(pb.Build(), bindings, config);
  ASSERT_TRUE(run.ok()) << run.status();
  auto expected = adata.Multiply(adata);
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(run->result.matrices.at("C").ApproxEqual(*expected, 1e-3));
}

TEST(EdgeCaseTest, AllZeroInputMatrix) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {12, 12}, 0.0);
  Mat c = pb.Var("C");
  pb.Assign(c, a.mm(a) + a);
  Scl s = pb.ScalarVar("s", 0.0);
  pb.Assign(s, c.Sum());
  pb.Output(c);
  pb.OutputScalar(s);
  LocalMatrix adata = LocalMatrix::Zeros({12, 12}, 4).Compacted(1.1);
  Bindings bindings{{"A", &adata}};
  RunConfig config;
  config.block_size = 4;
  auto run = RunProgram(pb.Build(), bindings, config);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->result.matrices.at("C").Nnz(), 0);
  EXPECT_DOUBLE_EQ(run->result.scalars.at("s"), 0.0);
}

TEST(EdgeCaseTest, LongDependencyChain) {
  // 12 chained squarings (normalized) stress scheme propagation.
  ProgramBuilder pb;
  Mat a = pb.Load("A", {20, 20}, 0.4);
  Mat x = pb.Var("X");
  pb.Assign(x, a);
  for (int i = 0; i < 12; ++i) {
    pb.Assign(x, x.mm(x) * (1.0 / 20.0));
  }
  pb.Output(x);
  Program p = pb.Build();
  LocalMatrix adata = SyntheticSparse(20, 20, 0.4, 8, 6);
  Bindings bindings{{"A", &adata}};
  RunConfig config;
  config.block_size = 8;
  auto run = RunProgram(p, bindings, config);
  ASSERT_TRUE(run.ok()) << run.status();
  auto local = InterpretLocally(p, bindings, 8, config.seed);
  ASSERT_TRUE(local.ok());
  EXPECT_TRUE(run->result.matrices.at("X").ApproxEqual(
      local->matrices.at("X"), 1e-2));
}

TEST(EdgeCaseTest, RepeatedOutputsOfSameVariable) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {6, 6}, 1.0);
  Mat b = pb.Var("B");
  pb.Assign(b, a + a);
  pb.Output(b);
  pb.Output(b);  // duplicate output request
  LocalMatrix adata = SyntheticDense(6, 6, 4, 7);
  Bindings bindings{{"A", &adata}};
  RunConfig config;
  config.block_size = 4;
  auto run = RunProgram(pb.Build(), bindings, config);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->result.matrices.count("B"), 1u);
}

TEST(EdgeCaseTest, TransposeOfTransposeIsIdentity) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {9, 5}, 0.6);
  Mat b = pb.Var("B");
  pb.Assign(b, a.t().t() - a);
  pb.Output(b);
  LocalMatrix adata = SyntheticSparse(9, 5, 0.6, 4, 8);
  Bindings bindings{{"A", &adata}};
  RunConfig config;
  config.block_size = 4;
  auto run = RunProgram(pb.Build(), bindings, config);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->result.matrices.at("B").Nnz(), 0);
}

TEST(EdgeCaseTest, SingleWorkerSingleThread) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {14, 10}, 0.5);
  Mat c = pb.Var("C");
  pb.Assign(c, a.t().mm(a).RowSums());
  pb.Output(c);
  LocalMatrix adata = SyntheticSparse(14, 10, 0.5, 4, 9);
  Bindings bindings{{"A", &adata}};
  RunConfig config;
  config.block_size = 4;
  config.num_workers = 1;
  config.threads_per_worker = 1;
  auto run = RunProgram(pb.Build(), bindings, config);
  ASSERT_TRUE(run.ok()) << run.status();
  auto gram = adata.Transposed().Multiply(adata);
  ASSERT_TRUE(gram.ok());
  EXPECT_TRUE(run->result.matrices.at("C").ApproxEqual(gram->RowSums(),
                                                       1e-3));
}

TEST(EdgeCaseTest, ProgramWithOnlyScalars) {
  ProgramBuilder pb;
  Scl x = pb.ScalarVar("x", 2.0);
  Scl y = pb.ScalarVar("y", 0.0);
  pb.Assign(y, (x * x + 1.0).Sqrt());
  pb.OutputScalar(y);
  Bindings empty;
  RunConfig config;
  config.block_size = 4;
  auto run = RunProgram(pb.Build(), empty, config);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_NEAR(run->result.scalars.at("y"), std::sqrt(5.0), 1e-9);
}

TEST(EdgeCaseTest, NegativeValuesSurviveSparsePaths) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {10, 10}, 0.3);
  Mat c = pb.Var("C");
  pb.Assign(c, (a - a * 2.0).mm(a));
  pb.Output(c);
  LocalMatrix adata = SyntheticSparse(10, 10, 0.3, 4, 10);
  Bindings bindings{{"A", &adata}};
  RunConfig config;
  config.block_size = 4;
  auto run = RunProgram(pb.Build(), bindings, config);
  ASSERT_TRUE(run.ok()) << run.status();
  auto neg = adata.ScalarMultiply(-1.0f).Multiply(adata);
  ASSERT_TRUE(neg.ok());
  EXPECT_TRUE(run->result.matrices.at("C").ApproxEqual(*neg, 1e-3));
}

}  // namespace
}  // namespace dmac
