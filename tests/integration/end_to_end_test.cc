// Whole-pipeline integration tests: for every evaluation application of the
// paper, the DMac plan, the SystemML-S plan, and the single-machine
// interpreter must compute the same results, and DMac must never
// communicate more than SystemML-S.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/collab_filter.h"
#include "apps/gnmf.h"
#include "apps/linear_regression.h"
#include "apps/local_interpreter.h"
#include "apps/pagerank.h"
#include "apps/runner.h"
#include "apps/svd_lanczos.h"
#include "data/graph_gen.h"
#include "data/netflix_gen.h"
#include "data/synthetic.h"

namespace dmac {
namespace {

constexpr int64_t kBs = 16;

struct AppCase {
  std::string name;
  Program program;
  // Owned input data; bindings point into it.
  std::vector<std::pair<std::string, LocalMatrix>> inputs;

  Bindings MakeBindings() const {
    Bindings b;
    for (const auto& [name_, m] : inputs) b.emplace(name_, &m);
    return b;
  }
};

AppCase MakeGnmfCase() {
  GnmfConfig config{64, 48, 0.2, 6, 2};
  AppCase c{"gnmf", BuildGnmfProgram(config), {}};
  c.inputs.emplace_back("V", SyntheticSparse(64, 48, 0.2, kBs, 31));
  return c;
}

AppCase MakePageRankCase() {
  GraphSpec spec = SocPokec().Scaled(30000);
  PageRankConfig config{spec.nodes, 0.02, 4, 0.85};
  AppCase c{"pagerank", BuildPageRankProgram(config), {}};
  c.inputs.emplace_back("link", RowNormalizedLink(spec, kBs, 3));
  c.inputs.emplace_back(
      "D", ConstantMatrix({1, spec.nodes}, kBs,
                          1.0f / static_cast<Scalar>(spec.nodes)));
  return c;
}

AppCase MakeLinRegCase() {
  LinRegConfig config{80, 24, 0.3, 3, 1e-6};
  AppCase c{"linreg", BuildLinearRegressionProgram(config), {}};
  c.inputs.emplace_back("V", SyntheticSparse(80, 24, 0.3, kBs, 11));
  c.inputs.emplace_back("y", SyntheticDense(80, 1, kBs, 12));
  return c;
}

AppCase MakeCfCase() {
  CollabFilterConfig config{24, 40, 0.25};
  AppCase c{"cf", BuildCollabFilterProgram(config), {}};
  c.inputs.emplace_back("R",
                        SyntheticSparse(24, 40, 0.25, kBs, 7));
  return c;
}

AppCase MakeSvdCase() {
  SvdConfig config{40, 20, 0.4, 4};
  AppCase c{"svd", BuildSvdLanczosProgram(config), {}};
  c.inputs.emplace_back("V", SyntheticSparse(40, 20, 0.4, kBs, 19));
  return c;
}

class AllAppsTest : public ::testing::TestWithParam<int> {
 protected:
  static AppCase MakeCase(int index) {
    switch (index) {
      case 0:
        return MakeGnmfCase();
      case 1:
        return MakePageRankCase();
      case 2:
        return MakeLinRegCase();
      case 3:
        return MakeCfCase();
      default:
        return MakeSvdCase();
    }
  }
};

TEST_P(AllAppsTest, DmacSystemMlAndLocalAgree) {
  AppCase c = MakeCase(GetParam());
  Bindings bindings = c.MakeBindings();

  RunConfig dmac_cfg;
  dmac_cfg.block_size = kBs;
  RunConfig sysml_cfg = dmac_cfg;
  sysml_cfg.exploit_dependencies = false;

  auto dmac_run = RunProgram(c.program, bindings, dmac_cfg);
  ASSERT_TRUE(dmac_run.ok()) << c.name << ": " << dmac_run.status();
  auto sysml_run = RunProgram(c.program, bindings, sysml_cfg);
  ASSERT_TRUE(sysml_run.ok()) << c.name << ": " << sysml_run.status();
  auto local = InterpretLocally(c.program, bindings, kBs, dmac_cfg.seed);
  ASSERT_TRUE(local.ok()) << c.name << ": " << local.status();

  for (auto& [name, m] : local->matrices) {
    EXPECT_TRUE(dmac_run->result.matrices.at(name).ApproxEqual(m, 0.05))
        << c.name << "/" << name << " (DMac vs local)";
    EXPECT_TRUE(sysml_run->result.matrices.at(name).ApproxEqual(m, 0.05))
        << c.name << "/" << name << " (SystemML-S vs local)";
  }
  for (auto& [name, v] : local->scalars) {
    const double tol = std::abs(v) * 5e-3 + 1e-3;
    EXPECT_NEAR(dmac_run->result.scalars.at(name), v, tol)
        << c.name << "/" << name;
    EXPECT_NEAR(sysml_run->result.scalars.at(name), v, tol)
        << c.name << "/" << name;
  }
}

TEST_P(AllAppsTest, DmacNeverCommunicatesMoreThanSystemMl) {
  AppCase c = MakeCase(GetParam());
  Bindings bindings = c.MakeBindings();
  RunConfig dmac_cfg;
  dmac_cfg.block_size = kBs;
  RunConfig sysml_cfg = dmac_cfg;
  sysml_cfg.exploit_dependencies = false;
  auto dmac_run = RunProgram(c.program, bindings, dmac_cfg);
  auto sysml_run = RunProgram(c.program, bindings, sysml_cfg);
  ASSERT_TRUE(dmac_run.ok() && sysml_run.ok()) << c.name;
  // The guarantee is on the cost model: DMac's plan never costs more.
  EXPECT_LE(dmac_run->plan.total_comm_bytes,
            sysml_run->plan.total_comm_bytes)
      << c.name;
  // Measured bytes follow the model up to worst-case-vs-actual slack, which
  // at this toy scale is bounded by a couple of blocks.
  EXPECT_LE(dmac_run->result.stats.comm_bytes(),
            sysml_run->result.stats.comm_bytes() + 4096)
      << c.name;
}

TEST_P(AllAppsTest, PlanCostModelTracksMeasuredBytes) {
  // The plan-time estimate uses worst-case sizes, so it must upper-bound
  // (not wildly underestimate) the measured traffic.
  AppCase c = MakeCase(GetParam());
  Bindings bindings = c.MakeBindings();
  RunConfig cfg;
  cfg.block_size = kBs;
  auto run = RunProgram(c.program, bindings, cfg);
  ASSERT_TRUE(run.ok());
  EXPECT_LE(run->result.stats.comm_bytes(),
            run->plan.total_comm_bytes * 1.6 + 4096)
      << c.name;
}

std::string AppCaseName(const ::testing::TestParamInfo<int>& info) {
  switch (info.param) {
    case 0:
      return "Gnmf";
    case 1:
      return "PageRank";
    case 2:
      return "LinReg";
    case 3:
      return "Cf";
    default:
      return "Svd";
  }
}

INSTANTIATE_TEST_SUITE_P(FiveApps, AllAppsTest, ::testing::Range(0, 5),
                         AppCaseName);

TEST(EndToEndTest, WorkerCountDoesNotChangeResults) {
  AppCase c = MakeGnmfCase();
  Bindings bindings = c.MakeBindings();
  RunConfig base;
  base.block_size = kBs;
  base.num_workers = 1;
  auto reference = RunProgram(c.program, bindings, base);
  ASSERT_TRUE(reference.ok());
  for (int workers : {2, 3, 5, 8}) {
    RunConfig cfg = base;
    cfg.num_workers = workers;
    auto run = RunProgram(c.program, bindings, cfg);
    ASSERT_TRUE(run.ok()) << workers;
    for (auto& [name, m] : reference->result.matrices) {
      EXPECT_TRUE(run->result.matrices.at(name).ApproxEqual(m, 0.02))
          << name << " with " << workers << " workers";
    }
  }
}

TEST(EndToEndTest, BufferAndInPlaceModesAgree) {
  AppCase c = MakeCfCase();
  Bindings bindings = c.MakeBindings();
  RunConfig inplace;
  inplace.block_size = kBs;
  RunConfig buffered = inplace;
  buffered.local_mode = LocalMode::kBuffer;
  auto r1 = RunProgram(c.program, bindings, inplace);
  auto r2 = RunProgram(c.program, bindings, buffered);
  ASSERT_TRUE(r1.ok() && r2.ok());
  for (auto& [name, m] : r1->result.matrices) {
    EXPECT_TRUE(r2->result.matrices.at(name).ApproxEqual(m, 1e-3)) << name;
  }
}

}  // namespace
}  // namespace dmac
