#include "baseline/scidb_sim.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace dmac {
namespace {

constexpr int64_t kBs = 8;

ScidbOptions DefaultOptions() {
  ScidbOptions o;
  o.grid = {2, 2};
  return o;
}

TEST(ScidbSimTest, ProducesCorrectProduct) {
  LocalMatrix a = SyntheticDense(24, 24, kBs, 1);
  LocalMatrix b = SyntheticDense(24, 8, kBs, 2);
  auto result = ScidbSim(DefaultOptions()).Multiply(a, b);
  ASSERT_TRUE(result.ok());
  auto expected = a.Multiply(b);
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(result->c.ApproxEqual(*expected, 1e-2));
}

TEST(ScidbSimTest, CostsMoreThanScalapack) {
  // Table 4: SciDB is substantially slower than raw ScaLAPACK because of
  // redistribution plus chunk bookkeeping.
  LocalMatrix a = SyntheticDense(32, 32, kBs, 3);
  LocalMatrix b = SyntheticDense(32, 32, kBs, 4);
  auto scidb = ScidbSim(DefaultOptions()).Multiply(a, b);
  auto scalapack = ScalapackSim({2, 2}).Multiply(a, b);
  ASSERT_TRUE(scidb.ok() && scalapack.ok());
  EXPECT_GT(scidb->comm_bytes, scalapack->comm_bytes);
  EXPECT_GT(scidb->overhead_seconds, 0);
  NetworkModel net;
  EXPECT_GT(scidb->SimulatedSeconds(net), scalapack->SimulatedSeconds(net));
}

TEST(ScidbSimTest, RedistributionCountsDenseBytesOfBothOperands) {
  LocalMatrix a = SyntheticSparse(32, 32, 0.01, kBs, 5);
  LocalMatrix b = SyntheticDense(32, 8, kBs, 6);
  auto scidb = ScidbSim(DefaultOptions()).Multiply(a, b);
  auto scalapack = ScalapackSim({2, 2}).Multiply(a, b);
  ASSERT_TRUE(scidb.ok() && scalapack.ok());
  const double extra = scidb->comm_bytes - scalapack->comm_bytes;
  EXPECT_DOUBLE_EQ(extra, 4.0 * 32 * 32 + 4.0 * 32 * 8);
}

TEST(ScidbSimTest, OverheadScalesWithChunkCount) {
  ScidbOptions opts = DefaultOptions();
  LocalMatrix small_a = SyntheticDense(16, 16, 16, 1);  // 1 chunk each
  LocalMatrix small_b = SyntheticDense(16, 16, 16, 2);
  LocalMatrix big_a = SyntheticDense(16, 16, 4, 1);     // 16 chunks each
  LocalMatrix big_b = SyntheticDense(16, 16, 4, 2);
  auto few = ScidbSim(opts).Multiply(small_a, small_b);
  auto many = ScidbSim(opts).Multiply(big_a, big_b);
  ASSERT_TRUE(few.ok() && many.ok());
  EXPECT_GT(many->overhead_seconds, few->overhead_seconds);
}

}  // namespace
}  // namespace dmac
