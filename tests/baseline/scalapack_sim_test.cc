#include "baseline/scalapack_sim.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace dmac {
namespace {

constexpr int64_t kBs = 8;

TEST(ScalapackSimTest, ProducesCorrectProduct) {
  LocalMatrix a = SyntheticDense(32, 24, kBs, 1);
  LocalMatrix b = SyntheticDense(24, 16, kBs, 2);
  ScalapackSim summa({2, 2});
  auto result = summa.Multiply(a, b);
  ASSERT_TRUE(result.ok()) << result.status();
  auto expected = a.Multiply(b);
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(result->c.ApproxEqual(*expected, 1e-2));
}

TEST(ScalapackSimTest, SparseInputHandledAsDense) {
  // The defining ScaLAPACK property in Table 4: sparse and dense inputs of
  // the same dimensions cost the same communication.
  LocalMatrix sparse = SyntheticSparse(32, 32, 0.05, kBs, 3);
  LocalMatrix dense = SyntheticDense(32, 32, kBs, 4);
  LocalMatrix rhs = SyntheticDense(32, 8, kBs, 5);
  ScalapackSim summa({2, 2});
  auto r_sparse = summa.Multiply(sparse, rhs);
  auto r_dense = summa.Multiply(dense, rhs);
  ASSERT_TRUE(r_sparse.ok() && r_dense.ok());
  EXPECT_DOUBLE_EQ(r_sparse->comm_bytes, r_dense->comm_bytes);
  EXPECT_EQ(r_sparse->comm_messages, r_dense->comm_messages);
}

TEST(ScalapackSimTest, SparseProductStillCorrect) {
  LocalMatrix sparse = SyntheticSparse(24, 24, 0.1, kBs, 6);
  LocalMatrix rhs = SyntheticDense(24, 8, kBs, 7);
  ScalapackSim summa({2, 2});
  auto result = summa.Multiply(sparse, rhs);
  ASSERT_TRUE(result.ok());
  auto expected = sparse.Multiply(rhs);
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(result->c.ApproxEqual(*expected, 1e-2));
}

TEST(ScalapackSimTest, CommScalesWithGridDimensions) {
  LocalMatrix a = SyntheticDense(32, 32, kBs, 1);
  LocalMatrix b = SyntheticDense(32, 32, kBs, 2);
  auto small = ScalapackSim({1, 1}).Multiply(a, b);
  auto large = ScalapackSim({4, 4}).Multiply(a, b);
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_EQ(small->comm_bytes, 0);  // single process: no messages
  EXPECT_GT(large->comm_bytes, 0);
}

TEST(ScalapackSimTest, PerProcessTimesRecorded) {
  LocalMatrix a = SyntheticDense(64, 64, kBs, 1);
  LocalMatrix b = SyntheticDense(64, 64, kBs, 2);
  ScalapackSim summa({2, 3});
  auto result = summa.Multiply(a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->proc_seconds.size(), 6u);
  EXPECT_GT(result->MaxProcSeconds(), 0);
  EXPECT_EQ(result->overhead_seconds, 0);
}

TEST(ScalapackSimTest, DimensionMismatchRejected) {
  LocalMatrix a = SyntheticDense(8, 8, kBs, 1);
  LocalMatrix b = SyntheticDense(16, 8, kBs, 2);
  EXPECT_FALSE(ScalapackSim({2, 2}).Multiply(a, b).ok());
}

TEST(MmSimResultTest, SimulatedSecondsCombinesComputeAndNetwork) {
  MmSimResult r;
  r.c = LocalMatrix::Zeros({1, 1}, 1);
  r.proc_seconds = {0.5, 1.0};
  r.comm_bytes = 125e6;  // one second at default bandwidth
  r.comm_messages = 2;
  NetworkModel net;
  EXPECT_NEAR(r.SimulatedSeconds(net), 1.0 + 1.0 + 2 * net.latency_sec, 1e-9);
}

}  // namespace
}  // namespace dmac
