#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace dmac {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, DoubleMeanIsRoughlyHalf) {
  Rng rng(7);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, SplitMix64AdvancesState) {
  uint64_t state = 42;
  const uint64_t a = SplitMix64(state);
  const uint64_t b = SplitMix64(state);
  EXPECT_NE(a, b);
  EXPECT_NE(state, 42u);
}

}  // namespace
}  // namespace dmac
