#include "common/status.h"

#include <gtest/gtest.h>

namespace dmac {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::Ok().ok()); }

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
  };
  const Case cases[] = {
      {Status::Invalid("a"), StatusCode::kInvalidArgument},
      {Status::OutOfRange("b"), StatusCode::kOutOfRange},
      {Status::NotFound("c"), StatusCode::kNotFound},
      {Status::AlreadyExists("d"), StatusCode::kAlreadyExists},
      {Status::DimensionMismatch("e"), StatusCode::kDimensionMismatch},
      {Status::Unsupported("f"), StatusCode::kUnsupported},
      {Status::Internal("g"), StatusCode::kInternal},
      {Status::Unavailable("h"), StatusCode::kUnavailable},
      {Status::DataLoss("i"), StatusCode::kDataLoss},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_FALSE(c.status.message().empty());
  }
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::DimensionMismatch("2x3 vs 4x5");
  EXPECT_EQ(s.ToString(), "DimensionMismatch: 2x3 vs 4x5");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Invalid("x"), Status::Invalid("x"));
  EXPECT_FALSE(Status::Invalid("x") == Status::Invalid("y"));
  EXPECT_FALSE(Status::Invalid("x") == Status::Internal("x"));
  EXPECT_EQ(Status::Ok(), Status());
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    DMAC_RETURN_NOT_OK(Status::NotFound("missing"));
    return Status::Ok();  // unreachable
  };
  EXPECT_EQ(fails().code(), StatusCode::kNotFound);

  auto passes = []() -> Status {
    DMAC_RETURN_NOT_OK(Status::Ok());
    return Status::Internal("reached");
  };
  EXPECT_EQ(passes().code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDimensionMismatch),
               "DimensionMismatch");
}

}  // namespace
}  // namespace dmac
