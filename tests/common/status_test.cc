#include "common/status.h"

#include <gtest/gtest.h>

namespace dmac {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::Ok().ok()); }

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
  };
  const Case cases[] = {
      {Status::Invalid("a"), StatusCode::kInvalidArgument},
      {Status::OutOfRange("b"), StatusCode::kOutOfRange},
      {Status::NotFound("c"), StatusCode::kNotFound},
      {Status::AlreadyExists("d"), StatusCode::kAlreadyExists},
      {Status::DimensionMismatch("e"), StatusCode::kDimensionMismatch},
      {Status::Unsupported("f"), StatusCode::kUnsupported},
      {Status::Internal("g"), StatusCode::kInternal},
      {Status::Unavailable("h"), StatusCode::kUnavailable},
      {Status::DataLoss("i"), StatusCode::kDataLoss},
      {Status::Cancelled("j"), StatusCode::kCancelled},
      {Status::DeadlineExceeded("k"), StatusCode::kDeadlineExceeded},
      {Status::ResourceExhausted("l"), StatusCode::kResourceExhausted},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_FALSE(c.status.message().empty());
  }
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::DimensionMismatch("2x3 vs 4x5");
  EXPECT_EQ(s.ToString(), "DimensionMismatch: 2x3 vs 4x5");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Invalid("x"), Status::Invalid("x"));
  EXPECT_FALSE(Status::Invalid("x") == Status::Invalid("y"));
  EXPECT_FALSE(Status::Invalid("x") == Status::Internal("x"));
  EXPECT_EQ(Status::Ok(), Status());
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    DMAC_RETURN_NOT_OK(Status::NotFound("missing"));
    return Status::Ok();  // unreachable
  };
  EXPECT_EQ(fails().code(), StatusCode::kNotFound);

  auto passes = []() -> Status {
    DMAC_RETURN_NOT_OK(Status::Ok());
    return Status::Internal("reached");
  };
  EXPECT_EQ(passes().code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDimensionMismatch),
               "DimensionMismatch");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "Cancelled");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
}

// The governance codes round-trip: factory -> code -> stable name -> the
// name rendered by ToString (docs/governance.md status taxonomy).
TEST(StatusTest, GovernanceCodesRoundTripNames) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  };
  const Case cases[] = {
      {Status::Cancelled("user abort"), StatusCode::kCancelled, "Cancelled"},
      {Status::DeadlineExceeded("0 ms"), StatusCode::kDeadlineExceeded,
       "DeadlineExceeded"},
      {Status::ResourceExhausted("budget"), StatusCode::kResourceExhausted,
       "ResourceExhausted"},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_STREQ(StatusCodeName(c.status.code()), c.name);
    EXPECT_EQ(c.status.ToString(),
              std::string(c.name) + ": " + c.status.message());
  }
}

}  // namespace
}  // namespace dmac
