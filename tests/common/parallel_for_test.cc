// Tests for the caller-participating ParallelFor (common/parallel_for.h):
// exactly-once index coverage, serial degradation, cooperative abandon,
// and forward progress when the pool is saturated (the deadlock scenario
// the caller-participation design exists for).
#include "common/parallel_for.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace dmac {
namespace {

TEST(ParallelForTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h = 0;
  const int64_t ran = ParallelFor(&pool, 1000, 3, nullptr,
                                  [&](int64_t i) { hits[i].fetch_add(1); });
  EXPECT_EQ(ran, 1000);
  for (int64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, NullPoolDegradesToSerialLoop) {
  std::vector<int> hits(64, 0);  // no synchronization needed: single thread
  const int64_t ran =
      ParallelFor(nullptr, 64, 4, nullptr, [&](int64_t i) { ++hits[i]; });
  EXPECT_EQ(ran, 64);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(hits[i], 1);
}

TEST(ParallelForTest, ZeroHelpersDegradesToSerialLoop) {
  ThreadPool pool(2);
  std::atomic<int64_t> count{0};
  const int64_t ran =
      ParallelFor(&pool, 100, 0, nullptr, [&](int64_t) { ++count; });
  EXPECT_EQ(ran, 100);
  EXPECT_EQ(count.load(), 100);
}

TEST(ParallelForTest, ZeroIndicesReturnsImmediately) {
  ThreadPool pool(2);
  const int64_t ran =
      ParallelFor(&pool, 0, 2, nullptr, [](int64_t) { FAIL(); });
  EXPECT_EQ(ran, 0);
}

TEST(ParallelForTest, PreFiredAbandonRunsNothing) {
  ThreadPool pool(2);
  std::atomic<bool> abandon{true};
  std::atomic<int64_t> count{0};
  const int64_t ran =
      ParallelFor(&pool, 100, 2, &abandon, [&](int64_t) { ++count; });
  EXPECT_EQ(ran, 0);
  EXPECT_EQ(count.load(), 0);
}

TEST(ParallelForTest, AbandonMidLoopStopsClaimingNewIndices) {
  ThreadPool pool(2);
  std::atomic<bool> abandon{false};
  std::atomic<int64_t> count{0};
  const int64_t ran = ParallelFor(&pool, 10000, 2, &abandon, [&](int64_t) {
    if (count.fetch_add(1) == 5) abandon = true;
  });
  // Indices already claimed finish; nothing new starts after the flag.
  EXPECT_LT(ran, 10000);
  EXPECT_EQ(count.load(), ran);
}

TEST(ParallelForTest, ReturnCountMatchesCallbacksRun) {
  ThreadPool pool(4);
  std::atomic<int64_t> count{0};
  const int64_t ran =
      ParallelFor(&pool, 257, 4, nullptr, [&](int64_t) { ++count; });
  EXPECT_EQ(ran, count.load());
  EXPECT_EQ(ran, 257);
}

TEST(ParallelForTest, MakesProgressWhileEveryPoolThreadIsBusy) {
  // The nested-parallelism scenario: all pool threads are blocked inside
  // long tasks, so helpers cannot be scheduled — the caller must drain the
  // loop alone rather than deadlock.
  ThreadPool pool(2);
  std::atomic<bool> release{false};
  for (int i = 0; i < 2; ++i) {
    pool.Submit([&release] {
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  std::atomic<int64_t> count{0};
  const int64_t ran =
      ParallelFor(&pool, 50, 2, nullptr, [&](int64_t) { ++count; });
  EXPECT_EQ(ran, 50);
  EXPECT_EQ(count.load(), 50);
  release = true;
  pool.WaitIdle();
}

TEST(ParallelForTest, ReusableForConsecutiveLoops) {
  // The threaded GEMM repacks panels between Kc slices and reuses the loop
  // per slice; each call must observe all prior-call writes (quiescence).
  ThreadPool pool(3);
  std::vector<int64_t> data(128, 0);
  for (int wave = 1; wave <= 4; ++wave) {
    const int64_t ran = ParallelFor(&pool, 128, 3, nullptr,
                                    [&](int64_t i) { data[i] += wave; });
    ASSERT_EQ(ran, 128);
  }
  for (int64_t v : data) EXPECT_EQ(v, 1 + 2 + 3 + 4);
}

}  // namespace
}  // namespace dmac
