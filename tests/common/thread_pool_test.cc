#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace dmac {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.WaitIdle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, WaitIdleBlocksUntilInFlightTaskCompletes) {
  ThreadPool pool(2);
  std::atomic<bool> done{false};
  pool.Submit([&done] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    done = true;
  });
  pool.WaitIdle();
  EXPECT_TRUE(done.load());
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 100; ++i) pool.Submit([&count] { ++count; });
    pool.WaitIdle();
    EXPECT_EQ(count.load(), (wave + 1) * 100);
  }
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(2);
  std::atomic<int> running{0};
  std::atomic<int> max_running{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&] {
      const int now = ++running;
      int prev = max_running.load();
      while (now > prev && !max_running.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      --running;
    });
  }
  pool.WaitIdle();
  EXPECT_GE(max_running.load(), 2);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.Submit([&count] { ++count; });
    // No WaitIdle: destructor must still run queued tasks or drain safely.
  }
  // All tasks either ran or the pool shut down without crashing.
  EXPECT_LE(count.load(), 50);
}

}  // namespace
}  // namespace dmac
