#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace dmac {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.WaitIdle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, WaitIdleBlocksUntilInFlightTaskCompletes) {
  ThreadPool pool(2);
  std::atomic<bool> done{false};
  pool.Submit([&done] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    done = true;
  });
  pool.WaitIdle();
  EXPECT_TRUE(done.load());
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 100; ++i) pool.Submit([&count] { ++count; });
    pool.WaitIdle();
    EXPECT_EQ(count.load(), (wave + 1) * 100);
  }
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(2);
  std::atomic<int> running{0};
  std::atomic<int> max_running{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&] {
      const int now = ++running;
      int prev = max_running.load();
      while (now > prev && !max_running.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      --running;
    });
  }
  pool.WaitIdle();
  EXPECT_GE(max_running.load(), 2);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.Submit([&count] { ++count; });
    // No WaitIdle: destructor must still run queued tasks or drain safely.
  }
  // All tasks either ran or the pool shut down without crashing.
  EXPECT_LE(count.load(), 50);
}

// --- Cooperative cancellation (docs/governance.md) -------------------------
//
// Tasks submitted with an abandon flag are popped and skipped — never run —
// once the flag is set, both by the worker loop and by the destructor's
// drain. A gate task pins the pool's only thread so the queue state when
// the flag flips is deterministic.

TEST(ThreadPoolTest, AbandonedQueuedTasksNeverRun) {
  ThreadPool pool(1);
  std::atomic<bool> gate{false};
  std::atomic<bool> abandon{false};
  std::atomic<int> ran{0};

  pool.Submit([&gate] {
    while (!gate.load()) std::this_thread::yield();
  });
  for (int i = 0; i < 16; ++i) {
    pool.Submit(&abandon, [&ran] { ++ran; });
  }
  // Everything behind the gate is still queued; firing the flag now must
  // skip all 16, deterministically.
  abandon.store(true);
  gate.store(true);
  pool.WaitIdle();  // skipped tasks count as completed
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPoolTest, UnsetFlagAndNullFlagTasksRunNormally) {
  ThreadPool pool(2);
  std::atomic<bool> abandon{false};
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) pool.Submit(&abandon, [&ran] { ++ran; });
  for (int i = 0; i < 8; ++i) pool.Submit(nullptr, [&ran] { ++ran; });
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolTest, AbandonmentIsSelective) {
  ThreadPool pool(1);
  std::atomic<bool> gate{false};
  std::atomic<bool> cancelled{false};
  std::atomic<bool> live{false};
  std::atomic<int> cancelled_ran{0};
  std::atomic<int> live_ran{0};

  pool.Submit([&gate] {
    while (!gate.load()) std::this_thread::yield();
  });
  // Interleave two queries' tasks; only one query's flag fires.
  for (int i = 0; i < 8; ++i) {
    pool.Submit(&cancelled, [&cancelled_ran] { ++cancelled_ran; });
    pool.Submit(&live, [&live_ran] { ++live_ran; });
  }
  cancelled.store(true);
  gate.store(true);
  pool.WaitIdle();
  EXPECT_EQ(cancelled_ran.load(), 0);
  EXPECT_EQ(live_ran.load(), 8);
}

TEST(ThreadPoolTest, DestructorDrainSkipsAbandonedTasks) {
  std::atomic<bool> abandon{false};
  std::atomic<bool> gate{false};
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    pool.Submit([&gate] {
      while (!gate.load()) std::this_thread::yield();
    });
    for (int i = 0; i < 32; ++i) {
      pool.Submit(&abandon, [&ran] { ++ran; });
    }
    abandon.store(true);
    gate.store(true);
    // No WaitIdle: shutdown's drain must observe the flag and skip every
    // queued task, deterministically.
  }
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPoolTest, FlagSetAfterTaskStartedDoesNotInterrupt) {
  ThreadPool pool(1);
  std::atomic<bool> abandon{false};
  std::atomic<bool> started{false};
  std::atomic<bool> finished{false};
  pool.Submit(&abandon, [&] {
    started.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    finished.store(true);
  });
  while (!started.load()) std::this_thread::yield();
  abandon.store(true);  // too late — a running task is cooperative
  pool.WaitIdle();
  EXPECT_TRUE(finished.load());
}

}  // namespace
}  // namespace dmac
