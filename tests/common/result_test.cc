#include "common/result.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace dmac {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ImplicitConversionFromValue) {
  auto make = []() -> Result<std::string> { return std::string("hello"); };
  Result<std::string> r = make();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "hello");
}

TEST(ResultTest, ImplicitConversionFromStatus) {
  auto make = []() -> Result<std::string> {
    return Status::Invalid("bad input");
  };
  EXPECT_FALSE(make().ok());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, AssignOrReturnMacroPropagatesError) {
  auto inner = []() -> Result<int> { return Status::OutOfRange("x"); };
  auto outer = [&]() -> Status {
    DMAC_ASSIGN_OR_RETURN(int v, inner());
    (void)v;
    return Status::Ok();
  };
  EXPECT_EQ(outer().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, AssignOrReturnMacroAssignsValue) {
  auto inner = []() -> Result<int> { return 5; };
  int seen = 0;
  auto outer = [&]() -> Status {
    DMAC_ASSIGN_OR_RETURN(int v, inner());
    seen = v;
    return Status::Ok();
  };
  EXPECT_TRUE(outer().ok());
  EXPECT_EQ(seen, 5);
}

}  // namespace
}  // namespace dmac
