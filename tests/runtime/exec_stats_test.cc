#include "runtime/exec_stats.h"

#include <gtest/gtest.h>

namespace dmac {
namespace {

TEST(ExecStatsTest, WorkerSecondsAccumulatePerStage) {
  ExecStats stats;
  stats.AddWorkerSeconds(1, 0, 0.5);
  stats.AddWorkerSeconds(1, 0, 0.25);
  stats.AddWorkerSeconds(1, 1, 0.4);
  stats.AddWorkerSeconds(3, 2, 1.0);  // skips stage 2
  ASSERT_EQ(stats.stage_worker_seconds.size(), 3u);
  EXPECT_DOUBLE_EQ(stats.stage_worker_seconds[0][0], 0.75);
  EXPECT_DOUBLE_EQ(stats.stage_worker_seconds[0][1], 0.4);
  EXPECT_TRUE(stats.stage_worker_seconds[1].empty());
  EXPECT_DOUBLE_EQ(stats.stage_worker_seconds[2][2], 1.0);
}

TEST(ExecStatsTest, ComputeWallIsSumOfStageMaxima) {
  ExecStats stats;
  stats.AddWorkerSeconds(1, 0, 0.75);
  stats.AddWorkerSeconds(1, 1, 0.4);
  stats.AddWorkerSeconds(2, 0, 0.1);
  stats.AddWorkerSeconds(2, 1, 0.9);
  EXPECT_DOUBLE_EQ(stats.ComputeWallSeconds(), 0.75 + 0.9);
}

TEST(ExecStatsTest, TotalComputeSumsAllStagesAndWorkers) {
  ExecStats stats;
  EXPECT_DOUBLE_EQ(stats.TotalComputeSeconds(), 0);
  stats.AddWorkerSeconds(1, 0, 0.75);
  stats.AddWorkerSeconds(1, 1, 0.4);
  stats.AddWorkerSeconds(2, 0, 0.1);
  stats.AddWorkerSeconds(2, 1, 0.9);
  EXPECT_DOUBLE_EQ(stats.TotalComputeSeconds(), 0.75 + 0.4 + 0.1 + 0.9);
  // Total >= wall: the gap is idle worker time (skew).
  EXPECT_GE(stats.TotalComputeSeconds(), stats.ComputeWallSeconds());
}

TEST(ExecStatsTest, CommSecondsFollowsNetworkModel) {
  ExecStats stats;
  stats.shuffle_bytes = 250e6;
  stats.broadcast_bytes = 125e6;
  stats.shuffle_events = 2;
  stats.broadcast_events = 1;
  NetworkModel net;
  net.bandwidth_bytes_per_sec = 125e6;
  net.latency_sec = 0.5;
  EXPECT_DOUBLE_EQ(stats.CommSeconds(net), 3.0 + 3 * 0.5);
  EXPECT_DOUBLE_EQ(stats.SimulatedSeconds(net),
                   stats.ComputeWallSeconds() + 4.5);
}

TEST(ExecStatsTest, MergeAccumulatesEverything) {
  ExecStats a;
  a.shuffle_bytes = 100;
  a.broadcast_events = 1;
  a.AddWorkerSeconds(1, 0, 0.5);
  a.peak_memory_bytes = 500;

  ExecStats b;
  b.shuffle_bytes = 50;
  b.shuffle_events = 2;
  b.AddWorkerSeconds(1, 0, 0.25);
  b.AddWorkerSeconds(2, 1, 1.0);
  b.peak_memory_bytes = 400;

  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.shuffle_bytes, 150);
  EXPECT_EQ(a.shuffle_events, 2);
  EXPECT_EQ(a.broadcast_events, 1);
  EXPECT_DOUBLE_EQ(a.stage_worker_seconds[0][0], 0.75);
  EXPECT_DOUBLE_EQ(a.stage_worker_seconds[1][1], 1.0);
  EXPECT_EQ(a.peak_memory_bytes, 500);  // max, not sum
}

TEST(ExecStatsTest, RecoveryAccountingIsSeparateFromUsefulCompute) {
  ExecStats stats;
  stats.AddWorkerSeconds(1, 0, 2.0);
  stats.AddRecoverySeconds(1, 0.5);
  stats.AddRecoverySeconds(3, 0.25);
  stats.AddRetry(3);
  stats.AddRetry(3);
  stats.AddRecomputed(3, 4);

  // Recovered work never inflates the useful-compute totals.
  EXPECT_DOUBLE_EQ(stats.TotalComputeSeconds(), 2.0);
  EXPECT_DOUBLE_EQ(stats.ComputeWallSeconds(), 2.0);
  EXPECT_DOUBLE_EQ(stats.TotalRecoverySeconds(), 0.75);
  EXPECT_EQ(stats.retries, 2);
  EXPECT_EQ(stats.recomputed_blocks, 4);
  ASSERT_EQ(stats.stage_retries.size(), 3u);
  EXPECT_EQ(stats.stage_retries[2], 2);
  ASSERT_EQ(stats.stage_recomputed_blocks.size(), 3u);
  EXPECT_EQ(stats.stage_recomputed_blocks[2], 4);
  ASSERT_EQ(stats.stage_recovery_seconds.size(), 3u);
  EXPECT_DOUBLE_EQ(stats.stage_recovery_seconds[0], 0.5);
  EXPECT_DOUBLE_EQ(stats.stage_recovery_seconds[2], 0.25);
}

TEST(ExecStatsTest, MergeAccumulatesFaultCounters) {
  ExecStats a;
  a.faults_injected = 1;
  a.restored_blocks = 2;
  a.checkpoint_bytes = 100;
  a.AddRetry(1);
  a.AddRecoverySeconds(1, 0.5);

  ExecStats b;
  b.faults_injected = 3;
  b.speculated_tasks = 1;
  b.recovery_bytes = 64;
  b.recovery_events = 2;
  b.AddRetry(1);
  b.AddRetry(2);
  b.AddRecomputed(2, 5);
  b.AddRecoverySeconds(2, 0.25);

  a.Merge(b);
  EXPECT_EQ(a.faults_injected, 4);
  EXPECT_EQ(a.retries, 3);
  EXPECT_EQ(a.recomputed_blocks, 5);
  EXPECT_EQ(a.restored_blocks, 2);
  EXPECT_EQ(a.speculated_tasks, 1);
  EXPECT_EQ(a.checkpoint_bytes, 100);
  EXPECT_DOUBLE_EQ(a.recovery_bytes, 64);
  EXPECT_EQ(a.recovery_events, 2);
  ASSERT_EQ(a.stage_retries.size(), 2u);
  EXPECT_EQ(a.stage_retries[0], 2);
  EXPECT_EQ(a.stage_retries[1], 1);
  EXPECT_DOUBLE_EQ(a.TotalRecoverySeconds(), 0.75);
}

TEST(ExecStatsTest, MergeAccumulatesMembershipAndNetworkCounters) {
  ExecStats a;
  a.workers_dead = 1;
  a.membership_epoch = 3;
  a.detection_seconds = 0.4;
  a.net_messages = 10;
  a.net_retransmits = 2;
  a.net_retrans_bytes = 128;
  a.net_duplicates = 1;

  ExecStats b;
  b.workers_dead = 2;
  b.membership_epoch = 2;
  b.detection_seconds = 0.2;
  b.net_messages = 5;
  b.net_reordered = 3;
  b.net_delay_seconds = 0.05;
  b.net_partitions = 1;
  b.net_stale_fenced = 4;
  b.net_stale_applied = 0;

  a.Merge(b);
  EXPECT_EQ(a.workers_dead, 3);
  EXPECT_EQ(a.membership_epoch, 3);  // max, not sum: epochs don't add
  EXPECT_DOUBLE_EQ(a.detection_seconds, 0.6);
  EXPECT_EQ(a.net_messages, 15);
  EXPECT_EQ(a.net_retransmits, 2);
  EXPECT_DOUBLE_EQ(a.net_retrans_bytes, 128);
  EXPECT_EQ(a.net_duplicates, 1);
  EXPECT_EQ(a.net_reordered, 3);
  EXPECT_DOUBLE_EQ(a.net_delay_seconds, 0.05);
  EXPECT_EQ(a.net_partitions, 1);
  EXPECT_EQ(a.net_stale_fenced, 4);
  EXPECT_EQ(a.net_stale_applied, 0);
}

TEST(ExecStatsTest, EmptyStatsAreZero) {
  ExecStats stats;
  EXPECT_DOUBLE_EQ(stats.comm_bytes(), 0);
  EXPECT_EQ(stats.comm_events(), 0);
  EXPECT_DOUBLE_EQ(stats.ComputeWallSeconds(), 0);
  EXPECT_DOUBLE_EQ(stats.SimulatedSeconds(NetworkModel{}), 0);
}

}  // namespace
}  // namespace dmac
