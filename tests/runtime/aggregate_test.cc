// Row/column-sum aggregation: kernels, strategies, and distributed
// execution across every input partition scheme.
#include <gtest/gtest.h>

#include "apps/local_interpreter.h"
#include "apps/runner.h"
#include "data/synthetic.h"
#include "lang/parser.h"
#include "plan/strategy.h"

namespace dmac {
namespace {

constexpr int64_t kBs = 16;

TEST(AggregateKernelTest, RowSumsMatchesManual) {
  for (bool sparse : {false, true}) {
    Block a = sparse ? RandomSparseBlock(9, 7, 0.3, 3)
                     : RandomDenseBlock(9, 7, 3);
    DenseBlock sums = RowSums(a);
    ASSERT_EQ(sums.rows(), 9);
    ASSERT_EQ(sums.cols(), 1);
    for (int64_t r = 0; r < 9; ++r) {
      double expected = 0;
      for (int64_t c = 0; c < 7; ++c) expected += a.At(r, c);
      EXPECT_NEAR(sums.At(r, 0), expected, 1e-4);
    }
  }
}

TEST(AggregateKernelTest, ColSumsMatchesManual) {
  for (bool sparse : {false, true}) {
    Block a = sparse ? RandomSparseBlock(9, 7, 0.3, 5)
                     : RandomDenseBlock(9, 7, 5);
    DenseBlock sums = ColSums(a);
    ASSERT_EQ(sums.rows(), 1);
    ASSERT_EQ(sums.cols(), 7);
    for (int64_t c = 0; c < 7; ++c) {
      double expected = 0;
      for (int64_t r = 0; r < 9; ++r) expected += a.At(r, c);
      EXPECT_NEAR(sums.At(0, c), expected, 1e-4);
    }
  }
}

TEST(AggregateKernelTest, LocalMatrixAggregations) {
  LocalMatrix m = LocalMatrix::RandomSparse({25, 18}, 8, 0.3, 7);
  LocalMatrix rs = m.RowSums();
  LocalMatrix cs = m.ColSums();
  EXPECT_EQ(rs.shape(), (Shape{25, 1}));
  EXPECT_EQ(cs.shape(), (Shape{1, 18}));
  EXPECT_NEAR(rs.Sum(), m.Sum(), 1e-3);
  EXPECT_NEAR(cs.Sum(), m.Sum(), 1e-3);
  for (int64_t r = 0; r < 25; ++r) {
    double expected = 0;
    for (int64_t c = 0; c < 18; ++c) expected += m.At(r, c);
    EXPECT_NEAR(rs.At(r, 0), expected, 1e-4);
  }
}

TEST(AggregateStrategyTest, AlignedIsLocalCrossedAggregates) {
  Operator op;
  op.kind = OpKind::kRowSums;
  op.inputs = {{"A", false}};
  op.output = "S";
  auto strategies = CandidateStrategies(op);
  ASSERT_EQ(strategies.size(), 3u);
  // {r} → r, local.
  EXPECT_EQ(strategies[0].input_schemes[0], Scheme::kRow);
  EXPECT_FALSE(strategies[0].output_comm);
  // {b} → b, local.
  EXPECT_EQ(strategies[1].input_schemes[0], Scheme::kBroadcast);
  EXPECT_FALSE(strategies[1].output_comm);
  // {c} → r|c with an aggregation shuffle.
  EXPECT_EQ(strategies[2].input_schemes[0], Scheme::kCol);
  EXPECT_TRUE(strategies[2].output_comm);
}

/// Builds `S = rowsums(A)` (or colsums) preceded by a shaping operation
/// that leaves A in a particular scheme.
Program AggregateProgram(bool rows, const char* pre) {
  const std::string fn = rows ? "rowsums" : "colsums";
  std::string src = "A = load(\"A\", 40, 30, 0.4)\n";
  src += pre;  // e.g. "B = A %*% t(A)\n" to force schemes
  src += "S = " + fn + "(A)\noutput(S)\n";
  auto p = ParseProgram(src);
  EXPECT_TRUE(p.ok()) << p.status();
  return *p;
}

class AggregateExecutionTest : public ::testing::TestWithParam<bool> {};

TEST_P(AggregateExecutionTest, DistributedMatchesLocal) {
  const bool rows = GetParam();
  Program p = AggregateProgram(rows, "");
  LocalMatrix a = SyntheticSparse(40, 30, 0.4, kBs, 3);
  Bindings bindings{{"A", &a}};
  for (bool exploit : {true, false}) {
    RunConfig config;
    config.block_size = kBs;
    config.num_workers = 3;
    config.exploit_dependencies = exploit;
    auto dist = RunProgram(p, bindings, config);
    ASSERT_TRUE(dist.ok()) << dist.status();
    LocalMatrix expected = rows ? a.RowSums() : a.ColSums();
    EXPECT_TRUE(dist->result.matrices.at("S").ApproxEqual(expected, 1e-3))
        << (exploit ? "dmac" : "sysml");
  }
}

INSTANTIATE_TEST_SUITE_P(BothAxes, AggregateExecutionTest, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "RowSums" : "ColSums";
                         });

TEST(AggregateExecutionTest, CrossedSchemeAggregationIsExercised) {
  // Force A into the crossed scheme first: t(A) %*% A consumes A(c)+A(r);
  // rowsums can then resolve from whichever got materialized.
  ProgramBuilder pb;
  Mat a = pb.Load("A", {48, 32}, 0.3);
  Mat g = pb.Var("G");
  pb.Assign(g, a.t().mm(a));
  Mat s = pb.Var("S");
  pb.Assign(s, g.RowSums());  // G is 32x32, CPMM output r|c
  Mat cs = pb.Var("CS");
  pb.Assign(cs, g.ColSums());
  pb.Output(s);
  pb.Output(cs);
  Program p = pb.Build();

  LocalMatrix adata = SyntheticSparse(48, 32, 0.3, kBs, 9);
  Bindings bindings{{"A", &adata}};
  RunConfig config;
  config.block_size = kBs;
  auto dist = RunProgram(p, bindings, config);
  ASSERT_TRUE(dist.ok()) << dist.status();
  auto local = InterpretLocally(p, bindings, kBs, config.seed);
  ASSERT_TRUE(local.ok());
  EXPECT_TRUE(dist->result.matrices.at("S").ApproxEqual(
      local->matrices.at("S"), 1e-2));
  EXPECT_TRUE(dist->result.matrices.at("CS").ApproxEqual(
      local->matrices.at("CS"), 1e-2));
}

TEST(AggregateExecutionTest, SumOfRowSumsEqualsTotal) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {36, 28}, 0.5);
  Scl total = pb.ScalarVar("total", 0.0);
  pb.Assign(total, a.Sum());
  Mat s = pb.Var("S");
  pb.Assign(s, a.RowSums());
  Scl via_rows = pb.ScalarVar("via_rows", 0.0);
  pb.Assign(via_rows, s.Sum());
  pb.OutputScalar(total);
  pb.OutputScalar(via_rows);
  LocalMatrix adata = SyntheticSparse(36, 28, 0.5, kBs, 4);
  Bindings bindings{{"A", &adata}};
  RunConfig config;
  config.block_size = kBs;
  auto dist = RunProgram(pb.Build(), bindings, config);
  ASSERT_TRUE(dist.ok()) << dist.status();
  EXPECT_NEAR(dist->result.scalars.at("total"),
              dist->result.scalars.at("via_rows"),
              std::abs(dist->result.scalars.at("total")) * 1e-4);
}

TEST(AggregateParserTest, RowsumsColsumsParse) {
  auto p = ParseProgram(
      "A = load(\"A\", 10, 8, 1)\n"
      "r = rowsums(A)\n"
      "c = colsums(A)\n"
      "output(r)\noutput(c)\n");
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->statements[1].matrix->kind, MatrixExpr::Kind::kRowSums);
  EXPECT_EQ(p->statements[2].matrix->kind, MatrixExpr::Kind::kColSums);
}

TEST(AggregateParserTest, PageRankWithNormalization) {
  // A realistic use: normalize ranks by their total each iteration.
  const std::string src =
      "link = load(\"link\", 60, 60, 0.1)\n"
      "rank = random(1, 60)\n"
      "for i in 0:3 {\n"
      "  rank = (rank %*% link) * 0.85 + 0.0025\n"
      "  total = value(rowsums(rank))\n"
      "  rank = rank / total\n"
      "}\n"
      "output(rank)\n";
  auto p = ParseProgram(src);
  ASSERT_TRUE(p.ok()) << p.status();
  LocalMatrix link = SyntheticSparse(60, 60, 0.1, kBs, 8);
  Bindings bindings{{"link", &link}};
  RunConfig config;
  config.block_size = kBs;
  auto dist = RunProgram(*p, bindings, config);
  ASSERT_TRUE(dist.ok()) << dist.status();
  // Normalized: total rank mass is 1.
  EXPECT_NEAR(dist->result.matrices.at("rank").Sum(), 1.0, 1e-3);
}

}  // namespace
}  // namespace dmac
