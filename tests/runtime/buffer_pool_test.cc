#include "runtime/buffer_pool.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "governor/memory_budget.h"

namespace dmac {
namespace {

/// Unwraps Acquire, failing the test on error.
DenseBlock MustAcquire(BufferPool& pool, int64_t rows, int64_t cols) {
  Result<DenseBlock> b = pool.Acquire(rows, cols);
  EXPECT_TRUE(b.ok()) << b.status().ToString();
  return std::move(*b);
}

TEST(BufferPoolTest, AcquireReturnsZeroedBlock) {
  BufferPool pool;
  DenseBlock b = MustAcquire(pool, 4, 5);
  EXPECT_EQ(b.rows(), 4);
  EXPECT_EQ(b.cols(), 5);
  EXPECT_EQ(b.CountNonZeros(), 0);
}

TEST(BufferPoolTest, RecyclesReleasedBlocks) {
  BufferPool pool;
  DenseBlock b = MustAcquire(pool, 8, 8);
  b.Set(0, 0, 1.0f);
  pool.Release(std::move(b));
  EXPECT_EQ(pool.IdleBlocks(), 1u);
  DenseBlock again = MustAcquire(pool, 8, 8);
  EXPECT_EQ(pool.IdleBlocks(), 0u);
  // Recycled block must come back clean.
  EXPECT_EQ(again.CountNonZeros(), 0);
}

TEST(BufferPoolTest, ShapesAreSegregated) {
  BufferPool pool;
  pool.Release(DenseBlock(2, 2));
  DenseBlock other = MustAcquire(pool, 3, 3);
  EXPECT_EQ(other.rows(), 3);
  EXPECT_EQ(pool.IdleBlocks(), 1u);  // the 2x2 is still idle
}

TEST(BufferPoolTest, CapacityBoundPerShape) {
  BufferPool pool(/*max_per_shape=*/2);
  pool.Release(DenseBlock(4, 4));
  pool.Release(DenseBlock(4, 4));
  pool.Release(DenseBlock(4, 4));  // dropped
  EXPECT_EQ(pool.IdleBlocks(), 2u);
}

TEST(BufferPoolTest, ConcurrentAcquireRelease) {
  BufferPool pool(8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&pool] {
      for (int i = 0; i < 200; ++i) {
        DenseBlock b = MustAcquire(pool, 16, 16);
        b.Set(0, 0, 1.0f);
        pool.Release(std::move(b));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(pool.IdleBlocks(), 8u);
  // Blocks coming out are always clean.
  EXPECT_EQ(MustAcquire(pool, 16, 16).CountNonZeros(), 0);
}

TEST(BufferPoolTest, ChargesBudgetForFreshBlocksOnly) {
  auto budget = std::make_shared<MemoryBudget>(/*limit_bytes=*/1 << 20);
  BufferPool pool;
  pool.SetBudget(budget);
  const int64_t bytes = DenseBlock::MemoryBytesFor(8, 8);

  DenseBlock b = MustAcquire(pool, 8, 8);
  EXPECT_EQ(budget->used_bytes(), bytes);
  pool.Release(std::move(b));
  // Idle blocks stay charged — they still hold memory.
  EXPECT_EQ(budget->used_bytes(), bytes);
  // A recycled block must not be charged twice.
  DenseBlock again = MustAcquire(pool, 8, 8);
  EXPECT_EQ(budget->used_bytes(), bytes);
  pool.Release(std::move(again));
}

TEST(BufferPoolTest, ReleasesChargeWhenBlocksAreDiscarded) {
  auto budget = std::make_shared<MemoryBudget>(/*limit_bytes=*/1 << 20);
  const int64_t bytes = DenseBlock::MemoryBytesFor(4, 4);
  {
    BufferPool pool(/*max_per_shape=*/1);
    pool.SetBudget(budget);
    DenseBlock a = MustAcquire(pool, 4, 4);
    DenseBlock b = MustAcquire(pool, 4, 4);
    EXPECT_EQ(budget->used_bytes(), 2 * bytes);
    pool.Release(std::move(a));          // kept idle
    pool.Release(std::move(b));          // slot full: discarded
    EXPECT_EQ(budget->used_bytes(), bytes);
  }
  // Pool destruction releases the idle block's charge too.
  EXPECT_EQ(budget->used_bytes(), 0);
}

TEST(BufferPoolTest, OversizeBlockIsRejectedNotGrown) {
  auto budget = std::make_shared<MemoryBudget>(/*limit_bytes=*/64);
  BufferPool pool;
  pool.SetBudget(budget);
  Result<DenseBlock> big = pool.Acquire(128, 128);
  ASSERT_FALSE(big.ok());
  EXPECT_EQ(big.status().code(), StatusCode::kResourceExhausted);
  // The failed acquire charged nothing.
  EXPECT_EQ(budget->used_bytes(), 0);
}

TEST(BufferPoolTest, SetBudgetRacesSafelyWithAcquireRelease) {
  // Regression: SetBudget used to write budget_ without the pool lock while
  // worker threads read it inside Acquire/Release — a data race TSan flags.
  // Budget swaps must now serialize through mu_ against a full
  // acquire/release storm. Discards release against whichever budget is
  // current (not the one that charged), so the invariant after the pool
  // dies is that the two accounts cancel, not that each is zero.
  auto first = std::make_shared<MemoryBudget>(/*limit_bytes=*/64 << 20);
  auto second = std::make_shared<MemoryBudget>(/*limit_bytes=*/64 << 20);
  {
    BufferPool pool(/*max_per_shape=*/2);
    pool.SetBudget(first);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&pool] {
        for (int i = 0; i < 200; ++i) {
          DenseBlock b = MustAcquire(pool, 16, 16);
          pool.Release(std::move(b));
        }
      });
    }
    // Swap budgets continuously while the workers churn.
    for (int i = 0; i < 100; ++i) {
      pool.SetBudget(i % 2 == 0 ? second : first);
    }
    for (auto& t : threads) t.join();
  }
  EXPECT_EQ(first->used_bytes() + second->used_bytes(), 0);
}

TEST(BufferPoolTest, TracksGlobalOutstandingBlocks) {
  const int64_t before = BufferPool::GlobalOutstandingBlocks();
  BufferPool pool;
  DenseBlock a = MustAcquire(pool, 4, 4);
  DenseBlock b = MustAcquire(pool, 4, 4);
  EXPECT_EQ(BufferPool::GlobalOutstandingBlocks(), before + 2);
  pool.Release(std::move(a));
  EXPECT_EQ(BufferPool::GlobalOutstandingBlocks(), before + 1);
  pool.Release(std::move(b));
  EXPECT_EQ(BufferPool::GlobalOutstandingBlocks(), before);
}

}  // namespace
}  // namespace dmac
