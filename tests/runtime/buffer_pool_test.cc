#include "runtime/buffer_pool.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace dmac {
namespace {

TEST(BufferPoolTest, AcquireReturnsZeroedBlock) {
  BufferPool pool;
  DenseBlock b = pool.Acquire(4, 5);
  EXPECT_EQ(b.rows(), 4);
  EXPECT_EQ(b.cols(), 5);
  EXPECT_EQ(b.CountNonZeros(), 0);
}

TEST(BufferPoolTest, RecyclesReleasedBlocks) {
  BufferPool pool;
  DenseBlock b = pool.Acquire(8, 8);
  b.Set(0, 0, 1.0f);
  pool.Release(std::move(b));
  EXPECT_EQ(pool.IdleBlocks(), 1u);
  DenseBlock again = pool.Acquire(8, 8);
  EXPECT_EQ(pool.IdleBlocks(), 0u);
  // Recycled block must come back clean.
  EXPECT_EQ(again.CountNonZeros(), 0);
}

TEST(BufferPoolTest, ShapesAreSegregated) {
  BufferPool pool;
  pool.Release(DenseBlock(2, 2));
  DenseBlock other = pool.Acquire(3, 3);
  EXPECT_EQ(other.rows(), 3);
  EXPECT_EQ(pool.IdleBlocks(), 1u);  // the 2x2 is still idle
}

TEST(BufferPoolTest, CapacityBoundPerShape) {
  BufferPool pool(/*max_per_shape=*/2);
  pool.Release(DenseBlock(4, 4));
  pool.Release(DenseBlock(4, 4));
  pool.Release(DenseBlock(4, 4));  // dropped
  EXPECT_EQ(pool.IdleBlocks(), 2u);
}

TEST(BufferPoolTest, ConcurrentAcquireRelease) {
  BufferPool pool(8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&pool] {
      for (int i = 0; i < 200; ++i) {
        DenseBlock b = pool.Acquire(16, 16);
        b.Set(0, 0, 1.0f);
        pool.Release(std::move(b));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(pool.IdleBlocks(), 8u);
  // Blocks coming out are always clean.
  EXPECT_EQ(pool.Acquire(16, 16).CountNonZeros(), 0);
}

}  // namespace
}  // namespace dmac
