// End-to-end executor tests: distributed execution must agree with the
// single-machine interpreter on every program, across worker counts, block
// sizes, planner modes, and local execution modes.
#include "runtime/executor.h"

#include <gtest/gtest.h>

#include <tuple>

#include "apps/local_interpreter.h"
#include "apps/runner.h"
#include "data/synthetic.h"
#include "lang/program.h"

namespace dmac {
namespace {

constexpr int64_t kBs = 16;

Program SingleOpProgram(BinOpKind op, Shape a_shape, Shape b_shape,
                        double a_sparsity, double b_sparsity) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", a_shape, a_sparsity);
  Mat b = pb.Load("B", b_shape, b_sparsity);
  Mat c = pb.Var("C");
  switch (op) {
    case BinOpKind::kMultiply:
      pb.Assign(c, a.mm(b));
      break;
    case BinOpKind::kAdd:
      pb.Assign(c, a + b);
      break;
    case BinOpKind::kSubtract:
      pb.Assign(c, a - b);
      break;
    case BinOpKind::kCellMultiply:
      pb.Assign(c, a * b);
      break;
    case BinOpKind::kCellDivide:
      pb.Assign(c, a / b);
      break;
  }
  pb.Output(c);
  return pb.Build();
}

/// Runs distributed and local, returns max |difference| proxy via
/// ApproxEqual.
void ExpectDistributedMatchesLocal(const Program& p, const Bindings& bindings,
                                   const RunConfig& config,
                                   double tol = 5e-2) {
  auto outcome = RunProgram(p, bindings, config);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  auto local = InterpretLocally(p, bindings, kBs, config.seed);
  ASSERT_TRUE(local.ok()) << local.status();
  ASSERT_EQ(outcome->result.matrices.size(), local->matrices.size());
  for (auto& [name, dist_m] : outcome->result.matrices) {
    ASSERT_TRUE(local->matrices.count(name)) << name;
    EXPECT_TRUE(dist_m.ApproxEqual(local->matrices.at(name), tol))
        << "matrix " << name << " differs";
  }
  for (auto& [name, value] : outcome->result.scalars) {
    ASSERT_TRUE(local->scalars.count(name)) << name;
    const double expected = local->scalars.at(name);
    EXPECT_NEAR(value, expected, std::abs(expected) * 1e-3 + 1e-3) << name;
  }
}

// ---- every binary operator, every planner mode ---------------------------

class OperatorExecutionTest
    : public ::testing::TestWithParam<std::tuple<BinOpKind, bool>> {};

TEST_P(OperatorExecutionTest, DistributedMatchesLocal) {
  const auto [op, exploit] = GetParam();
  const Shape a_shape = op == BinOpKind::kMultiply ? Shape{50, 40}
                                                   : Shape{50, 40};
  const Shape b_shape = op == BinOpKind::kMultiply ? Shape{40, 30}
                                                   : Shape{50, 40};
  LocalMatrix a = SyntheticSparse(a_shape.rows, a_shape.cols, 0.3, kBs, 11);
  // Dense, strictly-positive B avoids division blowups.
  LocalMatrix b =
      SyntheticDense(b_shape.rows, b_shape.cols, kBs, 12).ScalarAdd(0.5f);
  Bindings bindings{{"A", &a}, {"B", &b}};

  RunConfig config;
  config.num_workers = 3;
  config.block_size = kBs;
  config.exploit_dependencies = exploit;
  ExpectDistributedMatchesLocal(
      SingleOpProgram(op, a_shape, b_shape, 0.3, 1.0), bindings, config);
}

std::string OperatorCaseName(
    const ::testing::TestParamInfo<std::tuple<BinOpKind, bool>>& info) {
  std::string name;
  switch (std::get<0>(info.param)) {
    case BinOpKind::kMultiply:
      name = "Multiply";
      break;
    case BinOpKind::kAdd:
      name = "Add";
      break;
    case BinOpKind::kSubtract:
      name = "Subtract";
      break;
    case BinOpKind::kCellMultiply:
      name = "CellMultiply";
      break;
    case BinOpKind::kCellDivide:
      name = "CellDivide";
      break;
  }
  return name + (std::get<1>(info.param) ? "Dmac" : "SystemMl");
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, OperatorExecutionTest,
    ::testing::Combine(
        ::testing::Values(BinOpKind::kMultiply, BinOpKind::kAdd,
                          BinOpKind::kSubtract, BinOpKind::kCellMultiply,
                          BinOpKind::kCellDivide),
        ::testing::Bool()),
    OperatorCaseName);

// ---- every multiplication strategy ----------------------------------------

TEST(ExecutorTest, TransposedOperandsMultiply) {
  // C = A^T * A exercises transpose dependencies end to end.
  ProgramBuilder pb;
  Mat a = pb.Load("A", {60, 20}, 0.4);
  Mat c = pb.Var("C");
  pb.Assign(c, a.t().mm(a));
  pb.Output(c);
  LocalMatrix adata = SyntheticSparse(60, 20, 0.4, kBs, 3);
  Bindings bindings{{"A", &adata}};
  RunConfig config;
  config.num_workers = 4;
  config.block_size = kBs;
  ExpectDistributedMatchesLocal(pb.Build(), bindings, config);
}

TEST(ExecutorTest, ChainedProgramWithScalars) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {40, 40}, 0.5);
  Scl total = pb.ScalarVar("total", 0.0);
  pb.Assign(total, a.Sum());
  Mat c = pb.Var("C");
  pb.Assign(c, (a.mm(a) + a) * 0.5);
  Scl norm = pb.ScalarVar("norm", 0.0);
  pb.Assign(norm, (c * c).Sum().Sqrt());
  pb.Output(c);
  pb.OutputScalar(total);
  pb.OutputScalar(norm);
  LocalMatrix adata = SyntheticSparse(40, 40, 0.5, kBs, 5);
  Bindings bindings{{"A", &adata}};
  RunConfig config;
  config.num_workers = 2;
  config.block_size = kBs;
  ExpectDistributedMatchesLocal(pb.Build(), bindings, config);
}

// ---- worker-count / block-size sweep --------------------------------------

class ExecutionSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int64_t>> {};

TEST_P(ExecutionSweepTest, IterativeProgramMatchesLocal) {
  const auto [workers, block_size] = GetParam();
  ProgramBuilder pb;
  Mat v = pb.Load("V", {48, 36}, 0.2);
  Mat w = pb.Random("W", {48, 6});
  Mat h = pb.Random("H", {6, 36});
  for (int i = 0; i < 2; ++i) {
    pb.Assign(h, h * (w.t().mm(v)) / (w.t().mm(w).mm(h)));
    pb.Assign(w, w * (v.mm(h.t())) / (w.mm(h).mm(h.t())));
  }
  pb.Output(w);
  pb.Output(h);
  Program p = pb.Build();

  LocalMatrix vdata = SyntheticSparse(48, 36, 0.2, block_size, 17);
  Bindings bindings{{"V", &vdata}};
  RunConfig config;
  config.num_workers = workers;
  config.block_size = block_size;

  auto outcome = RunProgram(p, bindings, config);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  auto local = InterpretLocally(p, bindings, block_size, config.seed);
  ASSERT_TRUE(local.ok()) << local.status();
  EXPECT_TRUE(outcome->result.matrices.at("W").ApproxEqual(
      local->matrices.at("W"), 0.05));
  EXPECT_TRUE(outcome->result.matrices.at("H").ApproxEqual(
      local->matrices.at("H"), 0.05));
}

INSTANTIATE_TEST_SUITE_P(
    WorkersAndBlocks, ExecutionSweepTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 7),
                       ::testing::Values<int64_t>(8, 16, 48)),
    [](const auto& info) {
      return "W" + std::to_string(std::get<0>(info.param)) + "B" +
             std::to_string(std::get<1>(info.param));
    });

// ---- local execution modes --------------------------------------------------

TEST(ExecutorTest, BufferModeProducesSameResults) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {40, 40}, 0.3);
  Mat c = pb.Var("C");
  pb.Assign(c, a.mm(a));
  pb.Output(c);
  Program p = pb.Build();
  LocalMatrix adata = SyntheticSparse(40, 40, 0.3, kBs, 9);
  Bindings bindings{{"A", &adata}};

  RunConfig inplace;
  inplace.block_size = kBs;
  RunConfig buffered = inplace;
  buffered.local_mode = LocalMode::kBuffer;

  auto r1 = RunProgram(p, bindings, inplace);
  auto r2 = RunProgram(p, bindings, buffered);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_TRUE(r1->result.matrices.at("C").ApproxEqual(
      r2->result.matrices.at("C"), 1e-3));
}

TEST(ExecutorTest, StaticSchedulingProducesSameResults) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {48, 48}, 0.3);
  Mat c = pb.Var("C");
  pb.Assign(c, a.mm(a) + a.RowSums().mm(a.ColSums()) * 0.01);
  pb.Output(c);
  Program p = pb.Build();
  LocalMatrix adata = SyntheticSparse(48, 48, 0.3, kBs, 13);
  Bindings bindings{{"A", &adata}};

  RunConfig queue_cfg;
  queue_cfg.block_size = kBs;
  RunConfig static_cfg = queue_cfg;
  static_cfg.task_scheduling = TaskScheduling::kStatic;

  auto r1 = RunProgram(p, bindings, queue_cfg);
  auto r2 = RunProgram(p, bindings, static_cfg);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_TRUE(r1->result.matrices.at("C").ApproxEqual(
      r2->result.matrices.at("C"), 1e-3));
  // Scheduling changes timing only, never traffic.
  EXPECT_DOUBLE_EQ(r1->result.stats.comm_bytes(),
                   r2->result.stats.comm_bytes());
}

// ---- accounting invariants ---------------------------------------------------

TEST(ExecutorTest, SingleWorkerMovesNoShuffleBytes) {
  // With one worker everything is local: partition/broadcast move nothing
  // (loads still count as the initial read).
  ProgramBuilder pb;
  Mat a = pb.Load("A", {32, 32}, 0.5);
  Mat c = pb.Var("C");
  pb.Assign(c, a.mm(a));
  pb.Output(c);
  LocalMatrix adata = SyntheticSparse(32, 32, 0.5, kBs, 2);
  Bindings bindings{{"A", &adata}};
  RunConfig config;
  config.num_workers = 1;
  config.block_size = kBs;
  auto outcome = RunProgram(pb.Build(), bindings, config);
  ASSERT_TRUE(outcome.ok());
  const ExecStats& stats = outcome->result.stats;
  // Only the load's initial distribution counts.
  double load_bytes = 0;
  for (const PlanStep& s : outcome->plan.steps) {
    if (s.kind == StepKind::kLoad) load_bytes += s.comm_bytes;
  }
  EXPECT_LE(stats.comm_bytes(), load_bytes + 64);
}

TEST(ExecutorTest, DmacMovesFewerBytesThanSystemMl) {
  ProgramBuilder pb;
  Mat v = pb.Load("V", {64, 48}, 0.2);
  Mat w = pb.Random("W", {64, 4});
  Mat h = pb.Random("H", {4, 48});
  for (int i = 0; i < 3; ++i) {
    pb.Assign(h, h * (w.t().mm(v)) / (w.t().mm(w).mm(h)));
    pb.Assign(w, w * (v.mm(h.t())) / (w.mm(h).mm(h.t())));
  }
  pb.Output(w);
  Program p = pb.Build();
  LocalMatrix vdata = SyntheticSparse(64, 48, 0.2, kBs, 23);
  Bindings bindings{{"V", &vdata}};

  RunConfig dmac_cfg;
  dmac_cfg.block_size = kBs;
  RunConfig sysml_cfg = dmac_cfg;
  sysml_cfg.exploit_dependencies = false;

  auto dmac_run = RunProgram(p, bindings, dmac_cfg);
  auto sysml_run = RunProgram(p, bindings, sysml_cfg);
  ASSERT_TRUE(dmac_run.ok() && sysml_run.ok());
  EXPECT_LT(dmac_run->result.stats.comm_bytes(),
            sysml_run->result.stats.comm_bytes());
  EXPECT_LT(dmac_run->result.stats.comm_events(),
            sysml_run->result.stats.comm_events());
}

TEST(ExecutorTest, StatsTrackPerStageWorkerTime) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {64, 64}, 1.0);
  Mat c = pb.Var("C");
  pb.Assign(c, a.mm(a));
  pb.Output(c);
  LocalMatrix adata = SyntheticDense(64, 64, kBs, 2);
  Bindings bindings{{"A", &adata}};
  RunConfig config;
  config.num_workers = 2;
  config.block_size = kBs;
  auto outcome = RunProgram(pb.Build(), bindings, config);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->result.stats.stage_worker_seconds.empty());
  EXPECT_GT(outcome->result.stats.ComputeWallSeconds(), 0);
  EXPECT_GT(outcome->result.stats.peak_memory_bytes, 0);
}

TEST(ExecutorTest, MissingBindingReported) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {8, 8}, 1.0);
  Mat c = pb.Var("C");
  pb.Assign(c, a.mm(a));
  pb.Output(c);
  RunConfig config;
  config.block_size = 8;
  Bindings empty;
  auto outcome = RunProgram(pb.Build(), empty, config);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kNotFound);
}

TEST(ExecutorTest, BindingShapeMismatchReported) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {8, 8}, 1.0);
  Mat c = pb.Var("C");
  pb.Assign(c, a.mm(a));
  pb.Output(c);
  LocalMatrix wrong = SyntheticDense(9, 9, 8, 1);
  Bindings bindings{{"A", &wrong}};
  RunConfig config;
  config.block_size = 8;
  auto outcome = RunProgram(pb.Build(), bindings, config);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kDimensionMismatch);
}

TEST(ExecutorTest, MismatchedBindingBlockSizeReported) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {8, 8}, 1.0);
  Mat b = pb.Load("B", {8, 8}, 1.0);
  Mat c = pb.Var("C");
  pb.Assign(c, a.mm(b));
  pb.Output(c);
  LocalMatrix adata = SyntheticDense(8, 8, 8, 1);
  LocalMatrix bdata = SyntheticDense(8, 8, 4, 2);  // different block size
  Bindings bindings{{"A", &adata}, {"B", &bdata}};
  RunConfig config;
  auto outcome = RunProgram(pb.Build(), bindings, config);
  EXPECT_FALSE(outcome.ok());
}

TEST(ExecutorTest, NetworkModelTimeIsMonotoneInBytes) {
  ExecStats fast, slow;
  fast.shuffle_bytes = 1e6;
  slow.shuffle_bytes = 1e9;
  fast.shuffle_events = slow.shuffle_events = 1;
  NetworkModel net;
  EXPECT_LT(fast.SimulatedSeconds(net), slow.SimulatedSeconds(net));
}

}  // namespace
}  // namespace dmac
