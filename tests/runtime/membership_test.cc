// Epoch-based membership unit tests (docs/fault_tolerance.md): the
// alive → suspect → dead state machine, epoch monotonicity, and the
// deterministic HostOf rebalance used by degraded mode.
#include "runtime/membership.h"

#include <gtest/gtest.h>

namespace dmac {
namespace {

TEST(MembershipTest, StartsAliveAtEpochOne) {
  ClusterMembership m(4);
  EXPECT_EQ(m.num_workers(), 4);
  EXPECT_EQ(m.epoch(), 1);
  EXPECT_EQ(m.live_workers(), 4);
  EXPECT_EQ(m.dead_workers(), 0);
  for (int w = 0; w < 4; ++w) {
    EXPECT_EQ(m.state(w), WorkerState::kAlive);
    EXPECT_FALSE(m.IsDead(w));
    EXPECT_EQ(m.HostOf(w), w);
  }
}

TEST(MembershipTest, MissedHeartbeatsWalkTheStateMachine) {
  MembershipOptions opts;
  opts.suspect_after_missed = 2;
  opts.dead_after_missed = 4;
  ClusterMembership m(2, opts);

  EXPECT_FALSE(m.MissHeartbeat(1));  // 1 miss: still alive
  EXPECT_EQ(m.state(1), WorkerState::kAlive);
  EXPECT_TRUE(m.MissHeartbeat(1));  // 2 misses: suspect
  EXPECT_EQ(m.state(1), WorkerState::kSuspect);
  EXPECT_EQ(m.epoch(), 2);
  // Suspects still count toward quorum: no flapping on one missed beat.
  EXPECT_EQ(m.live_workers(), 2);

  EXPECT_FALSE(m.MissHeartbeat(1));  // 3 misses: still suspect
  EXPECT_TRUE(m.MissHeartbeat(1));   // 4 misses: dead
  EXPECT_EQ(m.state(1), WorkerState::kDead);
  EXPECT_EQ(m.epoch(), 3);
  EXPECT_EQ(m.live_workers(), 1);
}

TEST(MembershipTest, HeartbeatRecoversASuspectAndBumpsTheEpoch) {
  MembershipOptions opts;
  opts.suspect_after_missed = 1;
  opts.dead_after_missed = 3;
  ClusterMembership m(2, opts);
  ASSERT_TRUE(m.MissHeartbeat(0));
  ASSERT_EQ(m.state(0), WorkerState::kSuspect);
  const int64_t epoch_before = m.epoch();
  m.Heartbeat(0);
  EXPECT_EQ(m.state(0), WorkerState::kAlive);
  EXPECT_GT(m.epoch(), epoch_before);
}

TEST(MembershipTest, DeathIsPermanent) {
  ClusterMembership m(3);
  ASSERT_GT(m.DeclareDead(2), 0.0);
  const int64_t epoch = m.epoch();
  m.Heartbeat(2);  // the zombie heartbeat the epoch fence exists for
  EXPECT_TRUE(m.IsDead(2));
  EXPECT_EQ(m.epoch(), epoch);           // no transition, no bump
  EXPECT_EQ(m.DeclareDead(2), 0.0);      // idempotent
  EXPECT_FALSE(m.MissHeartbeat(2));      // nothing left to miss
}

TEST(MembershipTest, DeclareDeadReportsDetectionLatency) {
  MembershipOptions opts;
  opts.heartbeat_interval_seconds = 0.1;
  opts.suspect_after_missed = 2;
  opts.dead_after_missed = 4;
  ClusterMembership m(2, opts);
  // A fresh worker needs dead_after_missed intervals to be detected.
  EXPECT_DOUBLE_EQ(m.DeclareDead(0), 0.4);
  // A worker already under suspicion is detected faster.
  m.MissHeartbeat(1);
  m.MissHeartbeat(1);
  EXPECT_DOUBLE_EQ(m.DeclareDead(1), 0.2);
}

TEST(MembershipTest, HostOfScansToTheNextLiveWorker) {
  ClusterMembership m(4);
  m.DeclareDead(1);
  EXPECT_EQ(m.HostOf(0), 0);
  EXPECT_EQ(m.HostOf(1), 2);  // (1+1) % 4 is alive
  EXPECT_EQ(m.HostOf(2), 2);
  m.DeclareDead(2);
  EXPECT_EQ(m.HostOf(1), 3);  // scan skips the second corpse
  EXPECT_EQ(m.HostOf(2), 3);
  m.DeclareDead(3);
  EXPECT_EQ(m.HostOf(3), 0);  // wraps around
  const std::vector<int> map = m.HostMap();
  ASSERT_EQ(map.size(), 4u);
  EXPECT_EQ(map[0], 0);
  EXPECT_EQ(map[1], 0);
  EXPECT_EQ(map[2], 0);
  EXPECT_EQ(map[3], 0);
}

TEST(MembershipTest, HostOfIsIdentityWhenEveryWorkerIsDead) {
  ClusterMembership m(2);
  m.DeclareDead(0);
  m.DeclareDead(1);
  EXPECT_EQ(m.HostOf(0), 0);
  EXPECT_EQ(m.HostOf(1), 1);
}

TEST(MembershipTest, EveryTransitionBumpsTheEpochExactlyOnce) {
  MembershipOptions opts;
  opts.suspect_after_missed = 1;
  opts.dead_after_missed = 2;
  ClusterMembership m(3, opts);
  int64_t epoch = m.epoch();
  for (int w = 0; w < 3; ++w) {
    m.MissHeartbeat(w);  // alive -> suspect
    EXPECT_EQ(m.epoch(), epoch + 1);
    m.MissHeartbeat(w);  // suspect -> dead
    EXPECT_EQ(m.epoch(), epoch + 2);
    epoch = m.epoch();
  }
}

}  // namespace
}  // namespace dmac
