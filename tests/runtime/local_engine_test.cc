#include "runtime/local_engine.h"

#include <gtest/gtest.h>

#include <map>

#include "common/sync.h"

#include "common/thread_pool.h"
#include "matrix/local_matrix.h"
#include "matrix/mem_tracker.h"

namespace dmac {
namespace {

/// Test fixture providing a worker environment (pool + buffers) and a block
/// source built from a LocalMatrix.
class LocalEngineTest : public ::testing::TestWithParam<LocalMode> {
 protected:
  LocalEngineTest() : pool_(2), buffers_(4) {}

  LocalEngine MakeEngine(LocalMode mode) {
    return LocalEngine(&pool_, &buffers_, mode, 0.5);
  }

  static LocalEngine::BlockFn Source(const LocalMatrix& m) {
    return [&m](int64_t bi, int64_t bj) {
      return std::shared_ptr<const Block>(std::shared_ptr<void>(),
                                          &m.BlockAt(bi, bj));
    };
  }

  ThreadPool pool_;
  BufferPool buffers_;
};

TEST_P(LocalEngineTest, BlockedMultiplyMatchesOracle) {
  const LocalMatrix a = LocalMatrix::RandomSparse({40, 36}, 8, 0.2, 1);
  const LocalMatrix b = LocalMatrix::RandomDense({36, 24}, 8, 2);
  auto expected = a.Multiply(b);
  ASSERT_TRUE(expected.ok());

  LocalEngine engine = MakeEngine(GetParam());
  const BlockGrid out_grid{{40, 24}, 8};
  std::vector<MultiplyTask> tasks;
  for (int64_t bi = 0; bi < out_grid.block_rows(); ++bi) {
    for (int64_t bj = 0; bj < out_grid.block_cols(); ++bj) {
      tasks.push_back({bi, bj, 0, a.grid().block_cols()});
    }
  }
  Mutex mu;
  std::map<std::pair<int64_t, int64_t>, Block> results;
  Status st = engine.MultiplyBlocks(
      out_grid, tasks, Source(a), Source(b),
      [&](int64_t bi, int64_t bj, Block blk) {
        MutexLock lock(&mu);
        results.emplace(std::make_pair(bi, bj), std::move(blk));
      });
  ASSERT_TRUE(st.ok()) << st;
  ASSERT_EQ(results.size(), static_cast<size_t>(out_grid.num_blocks()));
  for (auto& [key, blk] : results) {
    EXPECT_TRUE(
        ApproxEqual(blk, expected->BlockAt(key.first, key.second), 1e-3))
        << key.first << "," << key.second;
  }
}

TEST_P(LocalEngineTest, PartialKRangeMultiply) {
  // CPMM-style task: only k in [1,3).
  const LocalMatrix a = LocalMatrix::RandomDense({8, 24}, 8, 3);
  const LocalMatrix b = LocalMatrix::RandomDense({24, 8}, 8, 4);
  LocalEngine engine = MakeEngine(GetParam());
  const BlockGrid out_grid{{8, 8}, 8};

  Mutex mu;
  Block result;
  Status st = engine.MultiplyBlocks(
      out_grid, {{0, 0, 1, 3}}, Source(a), Source(b),
      [&](int64_t, int64_t, Block blk) {
        MutexLock lock(&mu);
        result = std::move(blk);
      });
  ASSERT_TRUE(st.ok());

  DenseBlock expected(8, 8);
  for (int64_t k = 1; k < 3; ++k) {
    ASSERT_TRUE(
        MultiplyAccumulate(a.BlockAt(0, k), b.BlockAt(k, 0), &expected).ok());
  }
  EXPECT_TRUE(ApproxEqual(result, Block(expected), 1e-3));
}

TEST_P(LocalEngineTest, MissingBlockReportsError) {
  LocalEngine engine = MakeEngine(GetParam());
  const BlockGrid out_grid{{8, 8}, 8};
  auto null_source = [](int64_t, int64_t) {
    return std::shared_ptr<const Block>();
  };
  Status st = engine.MultiplyBlocks(out_grid, {{0, 0, 0, 1}}, null_source,
                                    null_source,
                                    [](int64_t, int64_t, Block) {});
  EXPECT_FALSE(st.ok());
}

TEST_P(LocalEngineTest, RunTasksPropagatesFirstError) {
  LocalEngine engine = MakeEngine(GetParam());
  std::vector<std::function<Status()>> tasks;
  tasks.push_back([] { return Status::Ok(); });
  tasks.push_back([] { return Status::Invalid("boom"); });
  tasks.push_back([] { return Status::Ok(); });
  Status st = engine.RunTasks(tasks);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(BothModes, LocalEngineTest,
                         ::testing::Values(LocalMode::kInPlace,
                                           LocalMode::kBuffer),
                         [](const auto& info) {
                           return info.param == LocalMode::kInPlace
                                      ? "InPlace"
                                      : "Buffer";
                         });

TEST(LocalEngineMemoryTest, BufferModeUsesMoreMemoryThanInPlace) {
  // Dense multiply with a long k-chain: Buffer materializes k partials per
  // output block, In-Place folds them into one accumulator (Fig. 7).
  const LocalMatrix a = LocalMatrix::RandomDense({32, 256}, 32, 7);
  const LocalMatrix b = LocalMatrix::RandomDense({256, 32}, 32, 8);
  const BlockGrid out_grid{{32, 32}, 32};

  auto run = [&](LocalMode mode) {
    ThreadPool pool(2);
    BufferPool buffers(4);
    LocalEngine engine(&pool, &buffers, mode, 0.5);
    auto source = [](const LocalMatrix& m) {
      return [&m](int64_t bi, int64_t bj) {
        return std::shared_ptr<const Block>(std::shared_ptr<void>(),
                                            &m.BlockAt(bi, bj));
      };
    };
    MemTracker::Global().ResetPeak();
    const int64_t before = MemTracker::Global().peak_bytes();
    Mutex mu;
    std::vector<Block> results;
    Status st = engine.MultiplyBlocks(
        out_grid, {{0, 0, 0, 8}}, source(a), source(b),
        [&](int64_t, int64_t, Block blk) {
          MutexLock lock(&mu);
          results.push_back(std::move(blk));
        });
    EXPECT_TRUE(st.ok());
    return MemTracker::Global().peak_bytes() - before;
  };

  const int64_t inplace_peak = run(LocalMode::kInPlace);
  const int64_t buffer_peak = run(LocalMode::kBuffer);
  EXPECT_GT(buffer_peak, inplace_peak);
}

}  // namespace
}  // namespace dmac
