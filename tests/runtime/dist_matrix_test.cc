#include "runtime/dist_matrix.h"

#include <gtest/gtest.h>

namespace dmac {
namespace {

TEST(OwnerTest, ContiguousChunks) {
  // 10 indices over 4 workers: chunk = 3 → owners 0,0,0,1,1,1,2,2,2,3.
  EXPECT_EQ(OwnerOfIndex(0, 10, 4), 0);
  EXPECT_EQ(OwnerOfIndex(2, 10, 4), 0);
  EXPECT_EQ(OwnerOfIndex(3, 10, 4), 1);
  EXPECT_EQ(OwnerOfIndex(8, 10, 4), 2);
  EXPECT_EQ(OwnerOfIndex(9, 10, 4), 3);
}

TEST(OwnerTest, FewerIndicesThanWorkers) {
  EXPECT_EQ(OwnerOfIndex(0, 2, 4), 0);
  EXPECT_EQ(OwnerOfIndex(1, 2, 4), 1);
}

TEST(OwnerTest, RangesCoverAllIndicesDisjointly) {
  for (int workers : {1, 3, 4, 7}) {
    for (int64_t count : {1, 5, 12, 100}) {
      int64_t covered = 0;
      for (int w = 0; w < workers; ++w) {
        int64_t lo, hi;
        OwnedRange(w, count, workers, &lo, &hi);
        for (int64_t i = lo; i < hi; ++i) {
          EXPECT_EQ(OwnerOfIndex(i, count, workers), w);
        }
        covered += hi - lo;
      }
      EXPECT_EQ(covered, count) << workers << " workers, " << count;
    }
  }
}

TEST(DistMatrixTest, RowSchemeOwnership) {
  DistMatrix dm(BlockGrid{{100, 100}, 10}, Scheme::kRow, 4);
  // 10 block rows over 4 workers.
  EXPECT_EQ(dm.OwnerOf(0, 5), 0);
  EXPECT_EQ(dm.OwnerOf(3, 0), 1);
  EXPECT_EQ(dm.OwnerOf(9, 9), 3);
  // Row scheme: owner independent of block column.
  for (int64_t bj = 0; bj < 10; ++bj) {
    EXPECT_EQ(dm.OwnerOf(4, bj), dm.OwnerOf(4, 0));
  }
}

TEST(DistMatrixTest, ColSchemeOwnership) {
  DistMatrix dm(BlockGrid{{100, 100}, 10}, Scheme::kCol, 4);
  for (int64_t bi = 0; bi < 10; ++bi) {
    EXPECT_EQ(dm.OwnerOf(bi, 7), dm.OwnerOf(0, 7));
  }
  EXPECT_EQ(dm.OwnerOf(0, 0), 0);
  EXPECT_EQ(dm.OwnerOf(0, 9), 3);
}

TEST(DistMatrixTest, PutGetRoundTrip) {
  DistMatrix dm(BlockGrid{{20, 20}, 10}, Scheme::kRow, 2);
  auto block = std::make_shared<const Block>(RandomDenseBlock(10, 10, 1));
  dm.Put(1, 1, 0, block);
  EXPECT_EQ(dm.Get(1, 1, 0), block);
  EXPECT_EQ(dm.Get(0, 1, 0), nullptr);
  EXPECT_EQ(dm.GetOwned(1, 0), dm.Get(dm.OwnerOf(1, 0), 1, 0));
}

TEST(DistMatrixTest, WorkerBlocksEnumeratesStore) {
  DistMatrix dm(BlockGrid{{30, 30}, 10}, Scheme::kRow, 3);
  for (int64_t bj = 0; bj < 3; ++bj) {
    dm.Put(1, 1, bj,
           std::make_shared<const Block>(RandomDenseBlock(10, 10, bj)));
  }
  auto blocks = dm.WorkerBlocks(1);
  EXPECT_EQ(blocks.size(), 3u);
  EXPECT_TRUE(dm.WorkerBlocks(0).empty());
  for (auto& [bi, bj, ptr] : blocks) {
    EXPECT_EQ(bi, 1);
    EXPECT_NE(ptr, nullptr);
  }
}

TEST(DistMatrixTest, TotalStoredBytesCountsReplicas) {
  DistMatrix dm(BlockGrid{{10, 10}, 10}, Scheme::kBroadcast, 3);
  auto block = std::make_shared<const Block>(RandomDenseBlock(10, 10, 1));
  for (int w = 0; w < 3; ++w) dm.Put(w, 0, 0, block);
  EXPECT_EQ(dm.TotalStoredBytes(), 3 * block->MemoryBytes());
}

}  // namespace
}  // namespace dmac
