// Exact communication accounting: the byte counts behind Fig. 6(b) must be
// predictable to the block. These tests derive the expected traffic of each
// communication primitive from first principles and assert equality.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/runner.h"
#include "data/synthetic.h"

namespace dmac {
namespace {

constexpr int64_t kBs = 8;

/// Runs a one-statement program and returns its stats plus the plan.
RunOutcome MustRun(const Program& p, const Bindings& bindings, int workers) {
  RunConfig config;
  config.block_size = kBs;
  config.num_workers = workers;
  auto run = RunProgram(p, bindings, config);
  EXPECT_TRUE(run.ok()) << run.status();
  return std::move(*run);
}

int64_t TotalBytes(const LocalMatrix& m) { return m.MemoryBytes(); }

TEST(CommAccountingTest, RowLoadCountsMatrixOnce) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {32, 32}, 1.0);
  Mat c = pb.Var("C");
  pb.Assign(c, a * 2.0);  // any scheme works; load lands r or c
  pb.Output(c);
  LocalMatrix adata = SyntheticDense(32, 32, kBs, 1);
  Bindings bindings{{"A", &adata}};
  RunOutcome run = MustRun(pb.Build(), bindings, 4);
  EXPECT_DOUBLE_EQ(run.result.stats.shuffle_bytes,
                   static_cast<double>(TotalBytes(adata)));
  EXPECT_EQ(run.result.stats.broadcast_events, 0);
}

TEST(CommAccountingTest, BroadcastCountsNMinusOneCopies) {
  // A row-partitioned matrix broadcast to N workers ships each block to the
  // other N-1 replicas.
  const int workers = 3;
  ProgramBuilder pb;
  Mat big = pb.Load("big", {64, 64}, 1.0);
  Mat small = pb.Load("small", {64, 8}, 1.0);
  Mat c = pb.Var("C");
  pb.Assign(c, big.mm(small));  // RMM2: broadcast `small`
  pb.Output(c);
  LocalMatrix big_data = SyntheticDense(64, 64, kBs, 1);
  LocalMatrix small_data = SyntheticDense(64, 8, kBs, 2);
  Bindings bindings{{"big", &big_data}, {"small", &small_data}};
  RunOutcome run = MustRun(pb.Build(), bindings, workers);

  // Expected broadcast traffic: (N-1) x |small|; the pull-up heuristic may
  // fold it into the load, in which case it is N x |small| (every replica
  // read from storage) with zero load shuffle for `small`.
  const double n_minus_one =
      static_cast<double>(workers - 1) * TotalBytes(small_data);
  const double n_times =
      static_cast<double>(workers) * TotalBytes(small_data);
  EXPECT_TRUE(run.result.stats.broadcast_bytes == n_minus_one ||
              run.result.stats.broadcast_bytes == n_times)
      << run.result.stats.broadcast_bytes;
}

TEST(CommAccountingTest, PartitionMovesOnlyRelocatedBlocks) {
  // r → c repartition of a W x W block grid: the block at (i, j) stays put
  // iff owner_row(i) == owner_col(j). With a 4x4 grid over 4 workers each
  // worker owns one block row/column, so exactly the 4 diagonal blocks
  // stay: 12 of 16 blocks move.
  const int workers = 4;
  ProgramBuilder pb;
  Mat a = pb.Load("A", {32, 32}, 1.0);     // 4x4 blocks of 8x8
  Mat b = pb.Load("B", {32, 32}, 1.0);
  Mat c = pb.Var("C");
  // Force both orientations of A: A %*% B uses one, Bᵀ %*% A ... simpler:
  // cell op after multiply pins mismatched schemes; instead build directly:
  pb.Assign(c, a.t().mm(a.t().t()));  // contrived; just ensure load + reuse
  pb.Output(c);
  // The precise 12/16 case is easier to pin through the executor-level
  // partition of a known distributed matrix; assert the general invariant
  // instead: measured shuffle bytes are a multiple of one 8x8 dense block.
  LocalMatrix adata = SyntheticDense(32, 32, kBs, 1);
  LocalMatrix bdata = SyntheticDense(32, 32, kBs, 2);
  Bindings bindings{{"A", &adata}, {"B", &bdata}};
  RunOutcome run = MustRun(pb.Build(), bindings, workers);
  const double block_bytes = 4.0 * kBs * kBs;
  const double shuffled = run.result.stats.shuffle_bytes;
  EXPECT_DOUBLE_EQ(shuffled / block_bytes,
                   std::floor(shuffled / block_bytes));
}

TEST(CommAccountingTest, RandomMatricesAreFree) {
  ProgramBuilder pb;
  Mat w = pb.Random("W", {64, 64});
  Mat c = pb.Var("C");
  pb.Assign(c, w + w);
  pb.Output(c);
  Bindings empty;
  RunOutcome run = MustRun(pb.Build(), empty, 4);
  EXPECT_DOUBLE_EQ(run.result.stats.shuffle_bytes, 0.0);
  EXPECT_DOUBLE_EQ(run.result.stats.broadcast_bytes, 0.0);
}

TEST(CommAccountingTest, LocalDependenciesMoveNothing) {
  // transpose + extract + cell ops after one load: only the load counts.
  ProgramBuilder pb;
  Mat a = pb.Load("A", {32, 24}, 0.5);
  Mat c = pb.Var("C");
  pb.Assign(c, a.t().t() - a);  // transpose round trip, fully local
  pb.Output(c);
  LocalMatrix adata = SyntheticSparse(32, 24, 0.5, kBs, 3);
  Bindings bindings{{"A", &adata}};
  RunOutcome run = MustRun(pb.Build(), bindings, 4);
  EXPECT_DOUBLE_EQ(run.result.stats.shuffle_bytes,
                   static_cast<double>(TotalBytes(adata)));
  EXPECT_DOUBLE_EQ(run.result.stats.broadcast_bytes, 0.0);
}

TEST(CommAccountingTest, EventsCountCommunicationRounds) {
  // Each load / partition / broadcast / aggregation is one event — the
  // "rounds" the latency model charges.
  ProgramBuilder pb;
  Mat a = pb.Load("A", {32, 32}, 1.0);
  Mat c = pb.Var("C");
  pb.Assign(c, a * 1.0);
  pb.Output(c);
  LocalMatrix adata = SyntheticDense(32, 32, kBs, 1);
  Bindings bindings{{"A", &adata}};
  RunOutcome run = MustRun(pb.Build(), bindings, 2);
  EXPECT_EQ(run.result.stats.comm_events(), 1);  // the load only
}

TEST(CommAccountingTest, MeasuredBytesScaleWithWorkerCountForBroadcasts) {
  ProgramBuilder pb;
  Mat big = pb.Load("big", {64, 64}, 1.0);
  Mat small = pb.Load("small", {64, 8}, 1.0);
  Mat c = pb.Var("C");
  pb.Assign(c, big.mm(small));
  pb.Output(c);
  LocalMatrix big_data = SyntheticDense(64, 64, kBs, 1);
  LocalMatrix small_data = SyntheticDense(64, 8, kBs, 2);
  Bindings bindings{{"big", &big_data}, {"small", &small_data}};
  const Program p = pb.Build();
  const double bytes2 = MustRun(p, bindings, 2).result.stats.broadcast_bytes;
  const double bytes6 = MustRun(p, bindings, 6).result.stats.broadcast_bytes;
  EXPECT_GT(bytes6, bytes2 * 2);
}

}  // namespace
}  // namespace dmac
