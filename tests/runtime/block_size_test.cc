#include "runtime/block_size.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dmac {
namespace {

TEST(BlockSizeTest, UpperBoundMatchesEquation3) {
  // m <= sqrt(M*N / (L*K)).
  const Shape shape{4847571, 4847571};  // LiveJournal-sized
  const int workers = 4, threads = 8;
  const int64_t bound = BlockSizeUpperBound(shape, workers, threads);
  const double expected = std::sqrt(
      static_cast<double>(shape.rows) * shape.cols / (workers * threads));
  EXPECT_NEAR(static_cast<double>(bound), expected, 1.0);
  // Paper §6.3: threshold ~856k for LiveJournal on the 4-node/8-thread
  // cluster.
  EXPECT_NEAR(static_cast<double>(bound) / 1000.0, 856, 2);
}

TEST(BlockSizeTest, PaperThresholdsForAllGraphs) {
  // §6.3 quotes ~856k, ~289k, ~667k for LiveJournal, soc-pokec, cit-Patents.
  EXPECT_NEAR(BlockSizeUpperBound({1632803, 1632803}, 4, 8) / 1000.0, 289, 2);
  EXPECT_NEAR(BlockSizeUpperBound({3774768, 3774768}, 4, 8) / 1000.0, 667, 2);
}

TEST(BlockSizeTest, MoreParallelismShrinksBlocks) {
  const Shape shape{100000, 100000};
  EXPECT_GT(BlockSizeUpperBound(shape, 4, 8),
            BlockSizeUpperBound(shape, 20, 8));
  EXPECT_GT(BlockSizeUpperBound(shape, 4, 2),
            BlockSizeUpperBound(shape, 4, 16));
}

TEST(BlockSizeTest, ChooseClampsToMatrixExtent) {
  // A tiny matrix with one worker/thread: bound may exceed the extent.
  const int64_t chosen = ChooseBlockSize({4, 4}, 1, 1);
  EXPECT_GE(chosen, 1);
  EXPECT_LE(chosen, 4);
}

TEST(BlockSizeTest, ChooseNeverZero) {
  EXPECT_GE(ChooseBlockSize({1, 1}, 64, 64), 1);
}

TEST(BlockSizeTest, PartitionedMemoryModelEquation2) {
  // Sparse: 4*N*(M/m) + 8*M*N*S; overhead shrinks as blocks grow.
  const Shape shape{100000, 100000};
  const double sparsity = 1e-4;
  const double small_blocks =
      EstimatedPartitionedBytes(shape, sparsity, 1000);
  const double large_blocks =
      EstimatedPartitionedBytes(shape, sparsity, 50000);
  EXPECT_GT(small_blocks, large_blocks);

  // Dense matrices are insensitive to block size: 4*M*N.
  EXPECT_DOUBLE_EQ(EstimatedPartitionedBytes(shape, 1.0, 1000),
                   4.0 * 100000 * 100000);
  EXPECT_DOUBLE_EQ(EstimatedPartitionedBytes(shape, 1.0, 50000),
                   4.0 * 100000 * 100000);
}

TEST(BlockSizeTest, MemoryModelMatchesClosedForm) {
  const Shape shape{10000, 8000};
  const double s = 0.001;
  const int64_t m = 2000;
  const double expected = 4.0 * 8000 * std::ceil(10000.0 / 2000) +
                          8.0 * 10000 * 8000 * s;
  EXPECT_DOUBLE_EQ(EstimatedPartitionedBytes(shape, s, m), expected);
}

}  // namespace
}  // namespace dmac
