#include "apps/runner.h"

#include <gtest/gtest.h>

#include "apps/collab_filter.h"
#include "apps/gnmf.h"
#include "runtime/block_size.h"

namespace dmac {
namespace {

TEST(ChooseProgramBlockSizeTest, BoundedByEverySquareIntermediate) {
  // CF's R·Rᵀ intermediate (items × items) must constrain the block size,
  // not just the larger input R.
  Program p = BuildCollabFilterProgram({1500, 40000, 0.01});
  auto bs = ChooseProgramBlockSize(p, 4, 2);
  ASSERT_TRUE(bs.ok()) << bs.status();
  EXPECT_LE(*bs, BlockSizeUpperBound({1500, 1500}, 4, 2));
  EXPECT_GE(*bs, 32);
}

TEST(ChooseProgramBlockSizeTest, VectorsDoNotShredTheGrid) {
  // LinReg-like shapes: the w/y vectors (n×1) must not drive the block
  // size toward sqrt(n/LK).
  ProgramBuilder pb;
  Mat v = pb.Load("V", {100000, 10000}, 1e-4);
  Mat y = pb.Load("y", {100000, 1}, 1.0);
  Mat c = pb.Var("C");
  pb.Assign(c, v.t().mm(y));
  pb.Output(c);
  auto bs = ChooseProgramBlockSize(pb.Build(), 4, 2);
  ASSERT_TRUE(bs.ok());
  // Without the vector exemption this would be sqrt(100000/8) ≈ 112;
  // with it, the bound comes from V itself.
  EXPECT_EQ(*bs, BlockSizeUpperBound({100000, 10000}, 4, 2));
}

TEST(ChooseProgramBlockSizeTest, TinyProgramsGetFloor) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {8, 8}, 1.0);
  Mat c = pb.Var("C");
  pb.Assign(c, a.mm(a));
  pb.Output(c);
  auto bs = ChooseProgramBlockSize(pb.Build(), 16, 8);
  ASSERT_TRUE(bs.ok());
  EXPECT_GE(*bs, 1);
  EXPECT_LE(*bs, 8);
}

TEST(ChooseProgramBlockSizeTest, MoreParallelismMeansSmallerBlocks) {
  Program p = BuildGnmfProgram({100000, 8000, 0.01, 64, 1});
  auto small_cluster = ChooseProgramBlockSize(p, 4, 2);
  auto big_cluster = ChooseProgramBlockSize(p, 20, 8);
  ASSERT_TRUE(small_cluster.ok() && big_cluster.ok());
  EXPECT_GT(*small_cluster, *big_cluster);
}

TEST(RunnerTest, PlanProgramMatchesRunProgramPlan) {
  Program p = BuildGnmfProgram({1000, 800, 0.1, 8, 1});
  RunConfig config;
  auto plan = PlanProgram(p, config);
  ASSERT_TRUE(plan.ok());
  EXPECT_GT(plan->steps.size(), 0u);
  EXPECT_GT(plan->total_comm_bytes, 0);
}

}  // namespace
}  // namespace dmac
