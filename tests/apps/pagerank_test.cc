#include "apps/pagerank.h"

#include <gtest/gtest.h>

#include <cmath>

#include "apps/local_interpreter.h"
#include "apps/runner.h"
#include "data/graph_gen.h"
#include "data/synthetic.h"
#include "data/triplets.h"

namespace dmac {
namespace {

constexpr int64_t kBs = 16;

TEST(PageRankTest, DistributedMatchesLocal) {
  GraphSpec spec = SocPokec().Scaled(30000);  // ~54 nodes
  PageRankConfig config{spec.nodes, 0.0, 5, 0.85};
  config.link_sparsity =
      static_cast<double>(spec.edges) /
      (static_cast<double>(spec.nodes) * spec.nodes);
  Program p = BuildPageRankProgram(config);

  LocalMatrix link = RowNormalizedLink(spec, kBs, 3);
  LocalMatrix d = ConstantMatrix({1, spec.nodes}, kBs,
                                 1.0f / static_cast<Scalar>(spec.nodes));
  Bindings bindings{{"link", &link}, {"D", &d}};
  RunConfig run;
  run.block_size = kBs;
  auto dist = RunProgram(p, bindings, run);
  ASSERT_TRUE(dist.ok()) << dist.status();
  auto local = InterpretLocally(p, bindings, kBs, run.seed);
  ASSERT_TRUE(local.ok());
  EXPECT_TRUE(dist->result.matrices.at("rank").ApproxEqual(
      local->matrices.at("rank"), 1e-3));
}

TEST(PageRankTest, RanksArePositiveAndFinite) {
  GraphSpec spec = CitPatents().Scaled(60000);
  PageRankConfig config{spec.nodes,
                        static_cast<double>(spec.edges) /
                            (static_cast<double>(spec.nodes) * spec.nodes),
                        8, 0.85};
  LocalMatrix link = RowNormalizedLink(spec, kBs, 5);
  LocalMatrix d = ConstantMatrix({1, spec.nodes}, kBs,
                                 1.0f / static_cast<Scalar>(spec.nodes));
  Bindings bindings{{"link", &link}, {"D", &d}};
  RunConfig run;
  run.block_size = kBs;
  auto dist = RunProgram(BuildPageRankProgram(config), bindings, run);
  ASSERT_TRUE(dist.ok());
  const LocalMatrix& rank = dist->result.matrices.at("rank");
  for (int64_t c = 0; c < rank.cols(); ++c) {
    EXPECT_GT(rank.At(0, c), 0.0f);
    EXPECT_TRUE(std::isfinite(rank.At(0, c)));
  }
}

TEST(PageRankTest, UniformRingGivesUniformRanks) {
  // A directed cycle: every node has in/out degree 1 → stationary
  // distribution is uniform.
  const int64_t n = 32;
  std::vector<Triplet> edges;
  for (int64_t i = 0; i < n; ++i) {
    edges.push_back({i, (i + 1) % n, 1.0f});
  }
  LocalMatrix link = MatrixFromTriplets({n, n}, kBs, edges);
  LocalMatrix d = ConstantMatrix({1, n}, kBs, 1.0f / n);
  PageRankConfig config{n, 1.0 / n, 80, 0.85};
  Bindings bindings{{"link", &link}, {"D", &d}};
  RunConfig run;
  run.block_size = kBs;
  auto dist = RunProgram(BuildPageRankProgram(config), bindings, run);
  ASSERT_TRUE(dist.ok());
  const LocalMatrix& rank = dist->result.matrices.at("rank");
  const Scalar first = rank.At(0, 0);
  for (int64_t c = 1; c < n; ++c) {
    EXPECT_NEAR(rank.At(0, c), first, 1e-4 * first + 1e-5);
  }
}

TEST(PageRankTest, HubReceivesHighestRank) {
  // Star graph: every node links to node 0 (and 0 to 1 to avoid dangling).
  const int64_t n = 24;
  std::vector<Triplet> edges;
  for (int64_t i = 1; i < n; ++i) edges.push_back({i, 0, 1.0f});
  edges.push_back({0, 1, 1.0f});
  LocalMatrix link = MatrixFromTriplets({n, n}, kBs, edges);
  LocalMatrix d = ConstantMatrix({1, n}, kBs, 1.0f / n);
  PageRankConfig config{n, 0.01, 60, 0.85};
  Bindings bindings{{"link", &link}, {"D", &d}};
  RunConfig run;
  run.block_size = kBs;
  auto dist = RunProgram(BuildPageRankProgram(config), bindings, run);
  ASSERT_TRUE(dist.ok());
  const LocalMatrix& rank = dist->result.matrices.at("rank");
  // The hub out-ranks every spoke (node 1, which receives the hub's whole
  // mass, is the one legitimate competitor).
  for (int64_t c = 2; c < n; ++c) {
    EXPECT_GT(rank.At(0, 0), rank.At(0, c));
  }
}

TEST(PageRankTest, DmacAvoidsRepartitioningLink) {
  GraphSpec spec = SocPokec().Scaled(30000);
  PageRankConfig config{spec.nodes, 0.05, 6, 0.85};
  LocalMatrix link = RowNormalizedLink(spec, kBs, 7);
  LocalMatrix d = ConstantMatrix({1, spec.nodes}, kBs,
                                 1.0f / static_cast<Scalar>(spec.nodes));
  Bindings bindings{{"link", &link}, {"D", &d}};
  RunConfig dmac_cfg;
  dmac_cfg.block_size = kBs;
  RunConfig sysml_cfg = dmac_cfg;
  sysml_cfg.exploit_dependencies = false;
  auto r1 = RunProgram(BuildPageRankProgram(config), bindings, dmac_cfg);
  auto r2 = RunProgram(BuildPageRankProgram(config), bindings, sysml_cfg);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_LT(r1->result.stats.comm_bytes(), r2->result.stats.comm_bytes());
}

}  // namespace
}  // namespace dmac
