// End-to-end plan search: every searched (and raced) plan must execute to
// bit-identical results against the greedy Algorithm-1 plan — the search
// only reorders communication, never arithmetic — plus the estimate-drift
// accounting the worst-case §5.1 size estimator makes necessary.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/gnmf.h"
#include "apps/pagerank.h"
#include "apps/runner.h"
#include "data/synthetic.h"

namespace dmac {
namespace {

constexpr int64_t kBs = 16;

void ExpectBitIdentical(const LocalMatrix& a, const LocalMatrix& b,
                        const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) {
      ASSERT_EQ(a.At(r, c), b.At(r, c))
          << what << " at (" << r << ", " << c << ")";
    }
  }
}

/// Near-equality for runs whose plans use *different multiply algorithms*:
/// RMM vs CPMM aggregate the k-dimension partial sums in a different order,
/// which legitimately flips low-order float bits. Anything beyond that is
/// a real divergence.
void ExpectUlpClose(const LocalMatrix& a, const LocalMatrix& b,
                    const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) {
      ASSERT_NEAR(a.At(r, c), b.At(r, c),
                  1e-5 * (1.0 + std::abs(a.At(r, c))))
          << what << " at (" << r << ", " << c << ")";
    }
  }
}

TEST(PlanSearchE2eTest, GnmfSearchedMatchesGreedyBitwise) {
  GnmfConfig config{64, 48, 0.2, 6, 3};
  Program p = BuildGnmfProgram(config);
  LocalMatrix v = SyntheticSparse(64, 48, 0.2, kBs, 31);
  Bindings bindings{{"V", &v}};

  RunConfig greedy_cfg;
  greedy_cfg.block_size = kBs;
  RunConfig search_cfg = greedy_cfg;
  search_cfg.plan_search = PlanSearchMode::kBeam;

  auto greedy = RunProgram(p, bindings, greedy_cfg);
  auto searched = RunProgram(p, bindings, search_cfg);
  ASSERT_TRUE(greedy.ok()) << greedy.status();
  ASSERT_TRUE(searched.ok()) << searched.status();

  EXPECT_TRUE(searched->search.ran);
  EXPECT_GT(searched->search.candidates, 0);
  // The greedy plan is in the candidate pool, so the winner never
  // estimates worse. (Ranking is by estimated seconds; the comm-bytes
  // comparison at benchmark scale lives in bench_plansearch.)
  EXPECT_LE(searched->search.best_seconds,
            searched->search.greedy_seconds + 1e-12);

  for (const char* name : {"W", "H"}) {
    ExpectBitIdentical(searched->result.matrices.at(name),
                       greedy->result.matrices.at(name), name);
  }
}

TEST(PlanSearchE2eTest, PageRankSearchedMatchesGreedyBitwise) {
  PageRankConfig config{96, 0.08, 4, 0.85};
  Program p = BuildPageRankProgram(config);
  LocalMatrix link = SyntheticSparse(96, 96, 0.08, kBs, 11);
  LocalMatrix d = SyntheticDense(1, 96, kBs, 13);
  Bindings bindings{{"link", &link}, {"D", &d}};

  RunConfig greedy_cfg;
  greedy_cfg.block_size = kBs;
  RunConfig search_cfg = greedy_cfg;
  search_cfg.plan_search = PlanSearchMode::kBeam;

  auto greedy = RunProgram(p, bindings, greedy_cfg);
  auto searched = RunProgram(p, bindings, search_cfg);
  ASSERT_TRUE(greedy.ok()) << greedy.status();
  ASSERT_TRUE(searched.ok()) << searched.status();
  EXPECT_TRUE(searched->search.ran);
  EXPECT_LE(searched->search.best_seconds,
            searched->search.greedy_seconds + 1e-12);
  // The searched PageRank plan swaps the multiply algorithm (RMM vs CPMM),
  // so partial sums aggregate in a different order.
  ExpectUlpClose(searched->result.matrices.at("rank"),
                 greedy->result.matrices.at("rank"), "rank");
}

TEST(PlanSearchE2eTest, RacedRunMatchesUnracedBitwise) {
  // Top-2 racing probes one iteration of each finalist, then executes the
  // winner's full plan from scratch — whichever finalist wins, the output
  // must be bit-identical to a non-raced greedy run.
  GnmfConfig config{64, 48, 0.2, 6, 3};
  Program p = BuildGnmfProgram(config);
  LocalMatrix v = SyntheticSparse(64, 48, 0.2, kBs, 31);
  Bindings bindings{{"V", &v}};

  RunConfig greedy_cfg;
  greedy_cfg.block_size = kBs;
  RunConfig race_cfg = greedy_cfg;
  race_cfg.plan_search = PlanSearchMode::kBeam;
  race_cfg.race_top2 = true;

  auto greedy = RunProgram(p, bindings, greedy_cfg);
  auto raced = RunProgram(p, bindings, race_cfg);
  ASSERT_TRUE(greedy.ok()) << greedy.status();
  ASSERT_TRUE(raced.ok()) << raced.status();
  EXPECT_TRUE(raced->search.ran);
  // An iterative program with >= 2 candidates must actually race.
  EXPECT_TRUE(raced->search.raced);
  EXPECT_GE(raced->search.race_winner, 0);
  EXPECT_LE(raced->search.race_winner, 1);
  EXPECT_GT(raced->search.race_probe_seconds, 0.0);
  for (const char* name : {"W", "H"}) {
    ExpectBitIdentical(raced->result.matrices.at(name),
                       greedy->result.matrices.at(name), name);
  }
}

TEST(PlanSearchE2eTest, PageRankRacedMatchesUnracedBitwise) {
  PageRankConfig config{96, 0.08, 4, 0.85};
  Program p = BuildPageRankProgram(config);
  LocalMatrix link = SyntheticSparse(96, 96, 0.08, kBs, 11);
  LocalMatrix d = SyntheticDense(1, 96, kBs, 13);
  Bindings bindings{{"link", &link}, {"D", &d}};

  RunConfig greedy_cfg;
  greedy_cfg.block_size = kBs;
  RunConfig race_cfg = greedy_cfg;
  race_cfg.plan_search = PlanSearchMode::kBeam;
  race_cfg.race_top2 = true;

  auto greedy = RunProgram(p, bindings, greedy_cfg);
  auto raced = RunProgram(p, bindings, race_cfg);
  ASSERT_TRUE(greedy.ok()) << greedy.status();
  ASSERT_TRUE(raced.ok()) << raced.status();
  ExpectUlpClose(raced->result.matrices.at("rank"),
                 greedy->result.matrices.at("rank"), "rank");
}

TEST(PlanSearchE2eTest, RacingWithoutSearchIsAnError) {
  GnmfConfig config{64, 48, 0.2, 6, 3};
  LocalMatrix v = SyntheticSparse(64, 48, 0.2, kBs, 31);
  Bindings bindings{{"V", &v}};
  RunConfig run;
  run.block_size = kBs;
  run.race_top2 = true;  // plan_search left at kOff
  auto out = RunProgram(BuildGnmfProgram(config), bindings, run);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST(PlanSearchE2eTest, GnmfRecordsEstimateDrift) {
  // Every run records measured nnz and the estimated-vs-measured comm
  // ratio; GNMF's plans communicate, so both sides are nonzero and the
  // ratio is well defined (>= 1).
  GnmfConfig config{64, 48, 0.2, 6, 3};
  LocalMatrix v = SyntheticSparse(64, 48, 0.2, kBs, 31);
  Bindings bindings{{"V", &v}};
  RunConfig run;
  run.block_size = kBs;
  auto out = RunProgram(BuildGnmfProgram(config), bindings, run);
  ASSERT_TRUE(out.ok()) << out.status();
  const ExecStats& stats = out->result.stats;
  EXPECT_GT(stats.estimated_comm_bytes, 0.0);
  EXPECT_GE(stats.estimate_drift, 1.0);
  EXPECT_FALSE(stats.matrix_nnz.empty());
}

TEST(PlanSearchE2eTest, WorstCaseSparsityDriftIsFlagged) {
  // Regression for the §5.1 pessimism: after A·B the estimator assumes a
  // dense product (s_C = 1), so a chain of very sparse multiplies carries a
  // communication estimate far above what executes. The drift ratio must
  // expose that (> 4x fires the planner.estimate.drift.events counter).
  ProgramBuilder pb;
  Mat a = pb.Load("A", {8192, 512}, 0.0005);
  Mat g = pb.Var("G");
  pb.Assign(g, a.t().mm(a));  // Gram product: tiny actual nnz, dense estimate
  Mat h = pb.Var("H2");
  pb.Assign(h, g.mm(g));  // and the "dense" G estimate propagates
  pb.Output(h);

  LocalMatrix am = SyntheticSparse(8192, 512, 0.0005, 128, 3);
  Bindings bindings{{"A", &am}};
  RunConfig run;
  run.block_size = 128;
  auto out = RunProgram(pb.Build(), bindings, run);
  ASSERT_TRUE(out.ok()) << out.status();
  const ExecStats& stats = out->result.stats;
  ASSERT_GT(stats.comm_bytes(), 0.0);
  EXPECT_GT(stats.estimate_drift, 4.0)
      << "estimated " << stats.estimated_comm_bytes << " vs measured "
      << stats.comm_bytes();
}

}  // namespace
}  // namespace dmac
