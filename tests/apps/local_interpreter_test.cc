#include "apps/local_interpreter.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace dmac {
namespace {

constexpr int64_t kBs = 8;

TEST(LocalInterpreterTest, EvaluatesArithmetic) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {8, 8}, 1.0);
  Mat c = pb.Var("C");
  pb.Assign(c, (a + a) * 0.5);
  pb.Output(c);
  LocalMatrix adata = SyntheticDense(8, 8, kBs, 1);
  Bindings bindings{{"A", &adata}};
  auto r = InterpretLocally(pb.Build(), bindings, kBs, 42);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->matrices.at("C").ApproxEqual(adata, 1e-5));
}

TEST(LocalInterpreterTest, RandomMatchesExecutorSeeding) {
  // The interpreter and the executor must generate the same random leaves
  // for the same (name, block size, seed).
  ProgramBuilder pb;
  Mat w = pb.Random("W", {16, 8});
  Mat c = pb.Var("C");
  pb.Assign(c, w * 1.0);
  pb.Output(c);
  Bindings empty;
  const Program p = pb.Build();
  auto r1 = InterpretLocally(p, empty, kBs, 7);
  auto r2 = InterpretLocally(p, empty, kBs, 7);
  auto r3 = InterpretLocally(p, empty, kBs, 8);
  ASSERT_TRUE(r1.ok() && r2.ok() && r3.ok());
  EXPECT_TRUE(r1->matrices.at("C").ApproxEqual(r2->matrices.at("C"), 0));
  EXPECT_FALSE(r1->matrices.at("C").ApproxEqual(r3->matrices.at("C"), 1e-6));
}

TEST(LocalInterpreterTest, ScalarFlow) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {4, 4}, 1.0);
  Scl s = pb.ScalarVar("s", 2.0);
  pb.Assign(s, a.Sum() * s);
  Mat c = pb.Var("C");
  pb.Assign(c, s * a);
  pb.Output(c);
  pb.OutputScalar(s);
  LocalMatrix adata = ConstantMatrix({4, 4}, kBs, 1.0f);
  Bindings bindings{{"A", &adata}};
  auto r = InterpretLocally(pb.Build(), bindings, kBs, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->scalars.at("s"), 32.0);  // sum=16, *2
  EXPECT_FLOAT_EQ(r->matrices.at("C").At(0, 0), 32.0f);
}

TEST(LocalInterpreterTest, ValueRequiresOneByOne) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {4, 4}, 1.0);
  Scl s = pb.ScalarVar("s", 0.0);
  pb.Assign(s, a.Value());
  pb.OutputScalar(s);
  LocalMatrix adata = SyntheticDense(4, 4, kBs, 1);
  Bindings bindings{{"A", &adata}};
  EXPECT_FALSE(InterpretLocally(pb.Build(), bindings, kBs, 1).ok());
}

TEST(LocalInterpreterTest, MissingBindingReported) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {4, 4}, 1.0);
  Mat c = pb.Var("C");
  pb.Assign(c, a * 2.0);
  pb.Output(c);
  Bindings empty;
  EXPECT_EQ(InterpretLocally(pb.Build(), empty, kBs, 1).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace dmac
