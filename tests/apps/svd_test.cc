#include "apps/svd_lanczos.h"

#include <gtest/gtest.h>

#include <cmath>

#include "apps/runner.h"
#include "data/synthetic.h"
#include "data/triplets.h"

namespace dmac {
namespace {

constexpr int64_t kBs = 16;

TEST(TridiagonalTest, DiagonalMatrixEigenvalues) {
  auto eig = TridiagonalEigenvalues({3.0, 1.0, 2.0}, {0.0, 0.0});
  ASSERT_TRUE(eig.ok());
  ASSERT_EQ(eig->size(), 3u);
  EXPECT_NEAR((*eig)[0], 1.0, 1e-10);
  EXPECT_NEAR((*eig)[1], 2.0, 1e-10);
  EXPECT_NEAR((*eig)[2], 3.0, 1e-10);
}

TEST(TridiagonalTest, TwoByTwoClosedForm) {
  // [[a, b], [b, c]] eigenvalues: (a+c)/2 ± sqrt(((a-c)/2)^2 + b^2).
  const double a = 2.0, c = 1.0, b = 0.5;
  auto eig = TridiagonalEigenvalues({a, c}, {b});
  ASSERT_TRUE(eig.ok());
  const double mid = (a + c) / 2, rad = std::sqrt(0.25 * (a - c) * (a - c) + b * b);
  EXPECT_NEAR((*eig)[0], mid - rad, 1e-10);
  EXPECT_NEAR((*eig)[1], mid + rad, 1e-10);
}

TEST(TridiagonalTest, TraceAndFrobeniusPreserved) {
  std::vector<double> alpha = {4.0, 2.5, 3.0, 1.5, 2.0};
  std::vector<double> beta = {1.0, 0.5, 0.8, 0.3};
  auto eig = TridiagonalEigenvalues(alpha, beta);
  ASSERT_TRUE(eig.ok());
  double trace = 0, eig_sum = 0;
  for (double a : alpha) trace += a;
  for (double e : *eig) eig_sum += e;
  EXPECT_NEAR(trace, eig_sum, 1e-9);
  // Frobenius: sum of eigenvalue squares = ||T||_F^2.
  double frob = 0;
  for (double a : alpha) frob += a * a;
  for (double b : beta) frob += 2 * b * b;
  double eig_sq = 0;
  for (double e : *eig) eig_sq += e * e;
  EXPECT_NEAR(frob, eig_sq, 1e-8);
}

TEST(TridiagonalTest, EmptyInput) {
  auto eig = TridiagonalEigenvalues({}, {});
  ASSERT_TRUE(eig.ok());
  EXPECT_TRUE(eig->empty());
}

TEST(SvdLanczosTest, RecoversSingularValuesOfDiagonalMatrix) {
  // V = diag(5, 3, 1) (8x8 padded with zeros on the diagonal tail has a
  // degenerate Krylov space; use a full-rank diagonal instead).
  const int64_t n = 6;
  std::vector<Triplet> entries;
  const double expected[] = {6, 5, 4, 3, 2, 1};
  for (int64_t i = 0; i < n; ++i) {
    entries.push_back({i, i, static_cast<Scalar>(expected[i])});
  }
  LocalMatrix v = MatrixFromTriplets({n, n}, kBs, entries);
  SvdConfig config{n, n, 1.0, static_cast<int>(n)};
  Program p = BuildSvdLanczosProgram(config);
  Bindings bindings{{"V", &v}};
  RunConfig run;
  run.block_size = kBs;
  auto dist = RunProgram(p, bindings, run);
  ASSERT_TRUE(dist.ok()) << dist.status();
  auto singular = SingularValuesFromScalars(config, dist->result.scalars);
  ASSERT_TRUE(singular.ok()) << singular.status();
  ASSERT_GE(singular->size(), 3u);
  // Leading singular values are found accurately by Lanczos.
  EXPECT_NEAR((*singular)[0], 6.0, 0.05);
  EXPECT_NEAR((*singular)[1], 5.0, 0.1);
}

TEST(SvdLanczosTest, LeadingValueMatchesPowerIteration) {
  LocalMatrix v = SyntheticSparse(60, 24, 0.3, kBs, 17);
  SvdConfig config{60, 24, 0.3, 12};
  Program p = BuildSvdLanczosProgram(config);
  Bindings bindings{{"V", &v}};
  RunConfig run;
  run.block_size = kBs;
  auto dist = RunProgram(p, bindings, run);
  ASSERT_TRUE(dist.ok()) << dist.status();
  auto singular = SingularValuesFromScalars(config, dist->result.scalars);
  ASSERT_TRUE(singular.ok());
  ASSERT_FALSE(singular->empty());

  // Power iteration on VᵀV for the dominant eigenvalue.
  LocalMatrix x = LocalMatrix::RandomDense({24, 1}, kBs, 99);
  double lambda = 0;
  for (int it = 0; it < 60; ++it) {
    auto vx = v.Multiply(x);
    ASSERT_TRUE(vx.ok());
    auto vtvx = v.Transposed().Multiply(*vx);
    ASSERT_TRUE(vtvx.ok());
    lambda = std::sqrt(vtvx->SumSquares() / x.SumSquares());
    x = vtvx->ScalarMultiply(static_cast<Scalar>(1.0 / std::sqrt(
                                 vtvx->SumSquares())));
  }
  EXPECT_NEAR((*singular)[0], std::sqrt(lambda), std::sqrt(lambda) * 0.02);
}

TEST(SvdLanczosTest, ScalarOutputsPresentForEveryStep) {
  SvdConfig config{30, 12, 0.5, 5};
  LocalMatrix v = SyntheticSparse(30, 12, 0.5, kBs, 23);
  Bindings bindings{{"V", &v}};
  RunConfig run;
  run.block_size = kBs;
  auto dist = RunProgram(BuildSvdLanczosProgram(config), bindings, run);
  ASSERT_TRUE(dist.ok());
  for (int i = 0; i < config.rank; ++i) {
    EXPECT_TRUE(dist->result.scalars.count("alpha_" + std::to_string(i)));
    EXPECT_TRUE(dist->result.scalars.count("beta_" + std::to_string(i)));
  }
}

TEST(SvdLanczosTest, MissingScalarReported) {
  SvdConfig config{10, 10, 1.0, 3};
  std::unordered_map<std::string, double> empty;
  EXPECT_FALSE(SingularValuesFromScalars(config, empty).ok());
}

}  // namespace
}  // namespace dmac
