#include "apps/gnmf.h"

#include <gtest/gtest.h>

#include "apps/local_interpreter.h"
#include "apps/runner.h"
#include "data/synthetic.h"

namespace dmac {
namespace {

constexpr int64_t kBs = 16;

TEST(GnmfTest, ProgramStructure) {
  GnmfConfig config{100, 80, 0.1, 8, 3};
  Program p = BuildGnmfProgram(config);
  // load + 2 randoms + 3 iterations x 2 statements.
  EXPECT_EQ(p.statements.size(), 3u + 6u);
  EXPECT_EQ(p.outputs.size(), 2u);
}

TEST(GnmfTest, DistributedMatchesLocal) {
  GnmfConfig config{64, 48, 0.2, 6, 2};
  Program p = BuildGnmfProgram(config);
  LocalMatrix v = SyntheticSparse(64, 48, 0.2, kBs, 31);
  Bindings bindings{{"V", &v}};
  RunConfig run;
  run.block_size = kBs;
  auto dist = RunProgram(p, bindings, run);
  ASSERT_TRUE(dist.ok()) << dist.status();
  auto local = InterpretLocally(p, bindings, kBs, run.seed);
  ASSERT_TRUE(local.ok()) << local.status();
  EXPECT_TRUE(dist->result.matrices.at("W").ApproxEqual(
      local->matrices.at("W"), 0.05));
  EXPECT_TRUE(dist->result.matrices.at("H").ApproxEqual(
      local->matrices.at("H"), 0.05));
}

TEST(GnmfTest, FactorsStayNonNegative) {
  // Multiplicative updates keep W, H >= 0 for non-negative inputs.
  GnmfConfig config{48, 40, 0.3, 5, 3};
  LocalMatrix v = SyntheticSparse(48, 40, 0.3, kBs, 9);
  Bindings bindings{{"V", &v}};
  RunConfig run;
  run.block_size = kBs;
  auto dist = RunProgram(BuildGnmfProgram(config), bindings, run);
  ASSERT_TRUE(dist.ok());
  for (const char* name : {"W", "H"}) {
    const LocalMatrix& m = dist->result.matrices.at(name);
    for (int64_t r = 0; r < m.rows(); ++r) {
      for (int64_t c = 0; c < m.cols(); ++c) {
        EXPECT_GE(m.At(r, c), 0.0f) << name;
      }
    }
  }
}

TEST(GnmfTest, ReconstructionErrorDecreasesOverIterations) {
  // GNMF is a descent method on ||V - WH||: more iterations must not make
  // the fit worse.
  const Shape vshape{60, 50};
  LocalMatrix v = SyntheticSparse(vshape.rows, vshape.cols, 0.4, kBs, 5);
  Bindings bindings{{"V", &v}};
  RunConfig run;
  run.block_size = kBs;

  auto error_after = [&](int iterations) {
    GnmfConfig config{vshape.rows, vshape.cols, 0.4, 8, iterations};
    auto dist = RunProgram(BuildGnmfProgram(config), bindings, run);
    EXPECT_TRUE(dist.ok());
    auto wh = dist->result.matrices.at("W").Multiply(
        dist->result.matrices.at("H"));
    EXPECT_TRUE(wh.ok());
    auto diff = v.Subtract(*wh);
    EXPECT_TRUE(diff.ok());
    return diff->SumSquares();
  };

  const double e1 = error_after(1);
  const double e8 = error_after(8);
  EXPECT_LT(e8, e1);
}

TEST(GnmfTest, DmacAndSystemMlConvergeIdentically) {
  GnmfConfig config{40, 32, 0.3, 4, 2};
  Program p = BuildGnmfProgram(config);
  LocalMatrix v = SyntheticSparse(40, 32, 0.3, kBs, 13);
  Bindings bindings{{"V", &v}};
  RunConfig dmac_cfg;
  dmac_cfg.block_size = kBs;
  RunConfig sysml_cfg = dmac_cfg;
  sysml_cfg.exploit_dependencies = false;
  auto r1 = RunProgram(p, bindings, dmac_cfg);
  auto r2 = RunProgram(p, bindings, sysml_cfg);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_TRUE(r1->result.matrices.at("W").ApproxEqual(
      r2->result.matrices.at("W"), 1e-2));
}

}  // namespace
}  // namespace dmac
