#include "apps/collab_filter.h"

#include <gtest/gtest.h>

#include "apps/local_interpreter.h"
#include "apps/runner.h"
#include "data/netflix_gen.h"

namespace dmac {
namespace {

constexpr int64_t kBs = 16;

TEST(CollabFilterTest, DistributedMatchesLocal) {
  NetflixSpec spec = NetflixSpec{}.Scaled(8000);  // ~60 x ~2
  spec.movies = 24;                               // keep a usable item axis
  spec.users = 48;
  spec.sparsity = 0.2;
  CollabFilterConfig config{spec.movies, spec.users, spec.sparsity};
  Program p = BuildCollabFilterProgram(config);

  LocalMatrix ratings = NetflixRatings(spec, kBs, 3).Transposed();
  ASSERT_EQ(ratings.rows(), spec.movies);
  Bindings bindings{{"R", &ratings}};
  RunConfig run;
  run.block_size = kBs;
  auto dist = RunProgram(p, bindings, run);
  ASSERT_TRUE(dist.ok()) << dist.status();
  auto local = InterpretLocally(p, bindings, kBs, run.seed);
  ASSERT_TRUE(local.ok());
  EXPECT_TRUE(dist->result.matrices.at("predict").ApproxEqual(
      local->matrices.at("predict"), 0.05));
}

TEST(CollabFilterTest, PredictionsMatchExplicitFormula) {
  CollabFilterConfig config{12, 20, 0.4};
  Program p = BuildCollabFilterProgram(config);
  LocalMatrix r = LocalMatrix::RandomSparse({12, 20}, kBs, 0.4, 5);
  Bindings bindings{{"R", &r}};
  RunConfig run;
  run.block_size = kBs;
  auto dist = RunProgram(p, bindings, run);
  ASSERT_TRUE(dist.ok());

  auto rrt = r.Multiply(r.Transposed());
  ASSERT_TRUE(rrt.ok());
  auto expected = rrt->Multiply(r);
  ASSERT_TRUE(expected.ok());
  LocalMatrix normalized = expected->ScalarMultiply(1.0f / 12);
  EXPECT_TRUE(dist->result.matrices.at("predict").ApproxEqual(normalized,
                                                              0.05));
}

TEST(CollabFilterTest, ItemSimilarityIsSymmetricEffect) {
  // R Rᵀ is symmetric: predictions of identical items coincide.
  std::vector<Block> unused;
  LocalMatrix r = LocalMatrix::Zeros({4, 6}, kBs);
  // Items 0 and 1 have identical rating rows.
  for (int64_t u : {0, 2, 4}) {
    r.BlockAt(0, 0).dense().Set(0, u, 3.0f);
    r.BlockAt(0, 0).dense().Set(1, u, 3.0f);
  }
  r.BlockAt(0, 0).dense().Set(2, 1, 5.0f);
  CollabFilterConfig config{4, 6, 0.5};
  Bindings bindings{{"R", &r}};
  RunConfig run;
  run.block_size = kBs;
  auto dist = RunProgram(BuildCollabFilterProgram(config), bindings, run);
  ASSERT_TRUE(dist.ok());
  const LocalMatrix& predict = dist->result.matrices.at("predict");
  for (int64_t u = 0; u < 6; ++u) {
    EXPECT_NEAR(predict.At(0, u), predict.At(1, u), 1e-4);
  }
}

TEST(CollabFilterTest, ChainReassociationKeepsIntermediateSmall) {
  // R(items x users) with items << users: the planner must compute
  // (R Rᵀ) R, whose intermediate is items², not users².
  CollabFilterConfig config{50, 5000, 0.01};
  Program p = BuildCollabFilterProgram(config);
  RunConfig run;
  auto plan = PlanProgram(p, run);
  ASSERT_TRUE(plan.ok());
  // No node in the plan may be users x users.
  for (const PlanNode& n : plan->nodes) {
    EXPECT_FALSE(n.stats.shape.rows == 5000 && n.stats.shape.cols == 5000)
        << n.ToString();
  }
}

}  // namespace
}  // namespace dmac
