// End-to-end check of the transpose-fusion rewrite: the same program run
// with fusion on and off must produce bit-identical outputs. The kernels
// guarantee this (packing absorbs a dense transpose before the same
// micro-kernel runs; the sparse flagged paths accumulate in the stored
// order the materialized-transpose path would), so any drift here is a
// kernel-indexing bug, not tolerance noise.
#include <gtest/gtest.h>

#include "apps/gnmf.h"
#include "apps/runner.h"
#include "data/synthetic.h"

namespace dmac {
namespace {

constexpr int64_t kBs = 16;

void ExpectBitIdentical(const LocalMatrix& a, const LocalMatrix& b,
                        const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) {
      ASSERT_EQ(a.At(r, c), b.At(r, c))
          << what << " at (" << r << ", " << c << ")";
    }
  }
}

TEST(TransposeFusionE2eTest, GnmfFusedAndUnfusedAreBitIdentical) {
  GnmfConfig config{64, 48, 0.2, 6, 3};
  Program p = BuildGnmfProgram(config);
  LocalMatrix v = SyntheticSparse(64, 48, 0.2, kBs, 31);
  Bindings bindings{{"V", &v}};

  RunConfig fused_cfg;
  fused_cfg.block_size = kBs;
  fused_cfg.fuse_transposes = true;
  RunConfig unfused_cfg = fused_cfg;
  unfused_cfg.fuse_transposes = false;

  auto fused = RunProgram(p, bindings, fused_cfg);
  auto unfused = RunProgram(p, bindings, unfused_cfg);
  ASSERT_TRUE(fused.ok()) << fused.status();
  ASSERT_TRUE(unfused.ok()) << unfused.status();

  // The rewrite actually changed the plan...
  EXPECT_LT(fused->plan.steps.size(), unfused->plan.steps.size());
  // ...and not the numbers.
  for (const char* name : {"W", "H"}) {
    ExpectBitIdentical(fused->result.matrices.at(name),
                       unfused->result.matrices.at(name), name);
  }
}

TEST(TransposeFusionE2eTest, DenseGramFusedAndUnfusedAreBitIdentical) {
  // Dense Aᵀ·A exercises the packed-GEMM TransA path end-to-end.
  ProgramBuilder pb;
  Mat a = pb.Load("A", {96, 32}, 1.0);
  Mat g = pb.Var("G");
  pb.Assign(g, a.t().mm(a));
  pb.Output(g);
  Program p = pb.Build();

  LocalMatrix am = SyntheticDense(96, 32, kBs, 7);
  Bindings bindings{{"A", &am}};

  RunConfig fused_cfg;
  fused_cfg.block_size = kBs;
  RunConfig unfused_cfg = fused_cfg;
  unfused_cfg.fuse_transposes = false;

  auto fused = RunProgram(p, bindings, fused_cfg);
  auto unfused = RunProgram(p, bindings, unfused_cfg);
  ASSERT_TRUE(fused.ok()) << fused.status();
  ASSERT_TRUE(unfused.ok()) << unfused.status();
  ExpectBitIdentical(fused->result.matrices.at("G"),
                     unfused->result.matrices.at("G"), "G");
}

}  // namespace
}  // namespace dmac
