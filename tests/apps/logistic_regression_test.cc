#include "apps/logistic_regression.h"

#include <gtest/gtest.h>

#include <cmath>

#include "apps/local_interpreter.h"
#include "apps/runner.h"
#include "data/synthetic.h"
#include "data/triplets.h"
#include "lang/parser.h"

namespace dmac {
namespace {

constexpr int64_t kBs = 16;

TEST(CellUnaryKernelTest, AppliesFunctions) {
  Block a = RandomDenseBlock(6, 5, 3);
  Block e = CellUnary(a, UnaryFnKind::kExp);
  Block s = CellUnary(a, UnaryFnKind::kSigmoid);
  Block q = CellUnary(a, UnaryFnKind::kSquare);
  for (int64_t r = 0; r < 6; ++r) {
    for (int64_t c = 0; c < 5; ++c) {
      EXPECT_NEAR(e.At(r, c), std::exp(a.At(r, c)), 1e-4);
      EXPECT_NEAR(s.At(r, c), 1.0 / (1.0 + std::exp(-a.At(r, c))), 1e-5);
      EXPECT_NEAR(q.At(r, c), a.At(r, c) * a.At(r, c), 1e-5);
    }
  }
}

TEST(CellUnaryKernelTest, ZeroPreservingKeepsSparse) {
  Block a = RandomSparseBlock(20, 20, 0.1, 5);
  EXPECT_TRUE(CellUnary(a, UnaryFnKind::kAbs).IsSparse());
  EXPECT_TRUE(CellUnary(a, UnaryFnKind::kSquare).IsSparse());
  // Densifying functions produce dense output (sigmoid(0) = 0.5 != 0).
  Block s = CellUnary(a, UnaryFnKind::kSigmoid);
  EXPECT_TRUE(s.IsDense());
  EXPECT_NEAR(s.At(0, 0), a.At(0, 0) == 0 ? 0.5 : s.At(0, 0), 1e-5);
}

TEST(LogRegTest, DistributedMatchesLocal) {
  LogRegConfig config{60, 20, 0.4, 4, 1.0};
  Program p = BuildLogisticRegressionProgram(config);
  LocalMatrix v = SyntheticSparse(60, 20, 0.4, kBs, 11);
  LocalMatrix y = ConstantMatrix({60, 1}, kBs, 0.0f);
  for (int64_t r = 0; r < 60; r += 2) {
    y.BlockAt(r / kBs, 0).dense().Set(r % kBs, 0, 1.0f);
  }
  Bindings bindings{{"V", &v}, {"y", &y}};
  RunConfig run;
  run.block_size = kBs;
  auto dist = RunProgram(p, bindings, run);
  ASSERT_TRUE(dist.ok()) << dist.status();
  auto local = InterpretLocally(p, bindings, kBs, run.seed);
  ASSERT_TRUE(local.ok()) << local.status();
  EXPECT_TRUE(dist->result.matrices.at("w_model").ApproxEqual(
      local->matrices.at("w_model"), 0.02));
  EXPECT_NEAR(dist->result.scalars.at("train_loss"),
              local->scalars.at("train_loss"),
              local->scalars.at("train_loss") * 1e-3 + 1e-4);
}

TEST(LogRegTest, LossDecreasesWithTraining) {
  // Separable-ish data: label 1 iff the example has any feature mass in the
  // first half of the feature space.
  const int64_t n = 120, d = 24;
  LocalMatrix v = SyntheticSparse(n, d, 0.3, kBs, 21);
  LocalMatrix y = LocalMatrix::Zeros({n, 1}, kBs);
  for (int64_t r = 0; r < n; ++r) {
    double first_half = 0;
    for (int64_t c = 0; c < d / 2; ++c) first_half += v.At(r, c);
    if (first_half > 0.5) {
      y.BlockAt(r / kBs, 0).dense().Set(r % kBs, 0, 1.0f);
    }
  }
  Bindings bindings{{"V", &v}, {"y", &y}};
  RunConfig run;
  run.block_size = kBs;

  auto loss_after = [&](int iterations) {
    LogRegConfig config{n, d, 0.3, iterations, 2.0};
    auto dist = RunProgram(BuildLogisticRegressionProgram(config), bindings,
                           run);
    EXPECT_TRUE(dist.ok()) << dist.status();
    return dist->result.scalars.at("train_loss");
  };
  const double l1 = loss_after(1);
  const double l20 = loss_after(20);
  EXPECT_LT(l20, l1);
}

TEST(LogRegTest, DmacCommunicatesLessThanSystemMl) {
  LogRegConfig config{300, 80, 0.1, 5, 1.0};
  Program p = BuildLogisticRegressionProgram(config);
  LocalMatrix v = SyntheticSparse(300, 80, 0.1, kBs, 31);
  LocalMatrix y = ConstantMatrix({300, 1}, kBs, 1.0f);
  Bindings bindings{{"V", &v}, {"y", &y}};
  RunConfig dmac_cfg;
  dmac_cfg.block_size = kBs;
  RunConfig sysml_cfg = dmac_cfg;
  sysml_cfg.exploit_dependencies = false;
  auto r1 = RunProgram(p, bindings, dmac_cfg);
  auto r2 = RunProgram(p, bindings, sysml_cfg);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_LT(r1->plan.total_comm_bytes, r2->plan.total_comm_bytes);
  EXPECT_LT(r1->result.stats.comm_bytes(), r2->result.stats.comm_bytes());
}

TEST(LogRegTest, ScriptFrontEndVersion) {
  // The same algorithm written in the script language.
  const std::string src =
      "V = load(\"V\", 40, 12, 0.5)\n"
      "y = load(\"y\", 40, 1, 1)\n"
      "w = random(12, 1)\n"
      "w = w * 0.01\n"
      "for i in 0:3 {\n"
      "  p = sigmoid(V %*% w)\n"
      "  w = w - t(V) %*% (p - y) * 0.025\n"
      "}\n"
      "output(w)\n";
  auto p = ParseProgram(src);
  ASSERT_TRUE(p.ok()) << p.status();
  LocalMatrix v = SyntheticSparse(40, 12, 0.5, kBs, 41);
  LocalMatrix y = ConstantMatrix({40, 1}, kBs, 1.0f);
  Bindings bindings{{"V", &v}, {"y", &y}};
  RunConfig run;
  run.block_size = kBs;
  auto dist = RunProgram(*p, bindings, run);
  ASSERT_TRUE(dist.ok()) << dist.status();
  auto local = InterpretLocally(*p, bindings, kBs, run.seed);
  ASSERT_TRUE(local.ok());
  EXPECT_TRUE(dist->result.matrices.at("w").ApproxEqual(
      local->matrices.at("w"), 0.02));
}

}  // namespace
}  // namespace dmac
