#include "apps/linear_regression.h"

#include <gtest/gtest.h>

#include "apps/local_interpreter.h"
#include "apps/runner.h"
#include "data/synthetic.h"

namespace dmac {
namespace {

constexpr int64_t kBs = 16;

TEST(LinRegTest, DistributedMatchesLocal) {
  LinRegConfig config{80, 24, 0.3, 4, 1e-6};
  Program p = BuildLinearRegressionProgram(config);
  LocalMatrix v = SyntheticSparse(80, 24, 0.3, kBs, 11);
  LocalMatrix y = SyntheticDense(80, 1, kBs, 12);
  Bindings bindings{{"V", &v}, {"y", &y}};
  RunConfig run;
  run.block_size = kBs;
  auto dist = RunProgram(p, bindings, run);
  ASSERT_TRUE(dist.ok()) << dist.status();
  auto local = InterpretLocally(p, bindings, kBs, run.seed);
  ASSERT_TRUE(local.ok()) << local.status();
  EXPECT_TRUE(dist->result.matrices.at("w_model").ApproxEqual(
      local->matrices.at("w_model"), 0.05));
  const double expected = local->scalars.at("norm_r2");
  EXPECT_NEAR(dist->result.scalars.at("norm_r2"), expected,
              std::abs(expected) * 0.01 + 1e-3);
}

TEST(LinRegTest, ResidualNormDecreases) {
  // CG reduces the residual monotonically (exact arithmetic); check that
  // more iterations give a (weakly) smaller final ||r||^2.
  LocalMatrix v = SyntheticSparse(120, 30, 0.25, kBs, 21);
  LocalMatrix y = SyntheticDense(120, 1, kBs, 22);
  Bindings bindings{{"V", &v}, {"y", &y}};
  RunConfig run;
  run.block_size = kBs;

  auto residual_after = [&](int iterations) {
    LinRegConfig config{120, 30, 0.25, iterations, 1e-6};
    auto dist = RunProgram(BuildLinearRegressionProgram(config), bindings,
                           run);
    EXPECT_TRUE(dist.ok()) << dist.status();
    return dist->result.scalars.at("norm_r2");
  };

  const double r2 = residual_after(2);
  const double r8 = residual_after(8);
  EXPECT_LE(r8, r2 * 1.01);
  EXPECT_GE(r8, 0.0);
}

TEST(LinRegTest, SolvesExactSystemToNearZeroResidual) {
  // With n >= features and enough CG steps, the normal equations are solved
  // almost exactly (small lambda).
  LinRegConfig config{64, 8, 1.0, 12, 1e-8};
  LocalMatrix v = SyntheticDense(64, 8, kBs, 33);
  LocalMatrix y = SyntheticDense(64, 1, kBs, 34);
  Bindings bindings{{"V", &v}, {"y", &y}};
  RunConfig run;
  run.block_size = kBs;
  auto dist = RunProgram(BuildLinearRegressionProgram(config), bindings, run);
  ASSERT_TRUE(dist.ok());
  // r = Vᵀ(Vw) - Vᵀy + λw ≈ 0 ⇒ norm_r2 tiny relative to initial |Vᵀy|².
  auto vty = v.Transposed().Multiply(y);
  ASSERT_TRUE(vty.ok());
  const double initial = vty->SumSquares();
  EXPECT_LT(dist->result.scalars.at("norm_r2"), initial * 1e-4);
}

TEST(LinRegTest, DmacCommunicatesLessThanSystemMl) {
  LinRegConfig config{400, 128, 0.1, 6, 1e-6};
  Program p = BuildLinearRegressionProgram(config);
  LocalMatrix v = SyntheticSparse(400, 128, 0.1, kBs, 41);
  LocalMatrix y = SyntheticDense(400, 1, kBs, 42);
  Bindings bindings{{"V", &v}, {"y", &y}};
  RunConfig dmac_cfg;
  dmac_cfg.block_size = kBs;
  RunConfig sysml_cfg = dmac_cfg;
  sysml_cfg.exploit_dependencies = false;
  auto r1 = RunProgram(p, bindings, dmac_cfg);
  auto r2 = RunProgram(p, bindings, sysml_cfg);
  ASSERT_TRUE(r1.ok() && r2.ok());
  // The cost-model guarantee is strict: SystemML-S repartitions V each
  // iteration while DMac references the cached layout.
  EXPECT_LT(r1->plan.total_comm_bytes, r2->plan.total_comm_bytes);
  EXPECT_LT(r1->result.stats.comm_bytes(), r2->result.stats.comm_bytes());
  // Both planners compute the same model.
  EXPECT_TRUE(r1->result.matrices.at("w_model").ApproxEqual(
      r2->result.matrices.at("w_model"), 1e-2));
}

}  // namespace
}  // namespace dmac
