#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "data/graph_gen.h"
#include "data/netflix_gen.h"
#include "data/synthetic.h"
#include "data/triplets.h"

namespace dmac {
namespace {

TEST(TripletsTest, BuildsBlockedMatrix) {
  std::vector<Triplet> triplets = {{0, 0, 1.0f}, {9, 9, 2.0f}, {5, 3, 3.0f}};
  LocalMatrix m = MatrixFromTriplets({10, 10}, 4, triplets);
  EXPECT_FLOAT_EQ(m.At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(m.At(9, 9), 2.0f);
  EXPECT_FLOAT_EQ(m.At(5, 3), 3.0f);
  EXPECT_EQ(m.Nnz(), 3);
}

TEST(TripletsTest, DuplicatesSummed) {
  std::vector<Triplet> triplets = {{1, 1, 1.0f}, {1, 1, 2.5f}};
  LocalMatrix m = MatrixFromTriplets({4, 4}, 2, triplets);
  EXPECT_FLOAT_EQ(m.At(1, 1), 3.5f);
  EXPECT_EQ(m.Nnz(), 1);
}

TEST(SyntheticTest, SparseMatrixMatchesSpec) {
  LocalMatrix m = SyntheticSparse(200, 100, 0.05, 32, 7);
  EXPECT_EQ(m.shape(), (Shape{200, 100}));
  EXPECT_NEAR(static_cast<double>(m.Nnz()) / (200.0 * 100), 0.05, 0.01);
}

TEST(SyntheticTest, DeterministicPerSeed) {
  LocalMatrix a = SyntheticSparse(50, 50, 0.1, 16, 3);
  LocalMatrix b = SyntheticSparse(50, 50, 0.1, 16, 3);
  EXPECT_TRUE(a.ApproxEqual(b, 0));
}

TEST(SyntheticTest, ConstantMatrix) {
  LocalMatrix m = ConstantMatrix({3, 5}, 2, 0.25f);
  for (int64_t r = 0; r < 3; ++r) {
    for (int64_t c = 0; c < 5; ++c) EXPECT_FLOAT_EQ(m.At(r, c), 0.25f);
  }
}

TEST(GraphGenTest, PresetsCarryPaperTable3Counts) {
  EXPECT_EQ(SocPokec().nodes, 1632803);
  EXPECT_EQ(SocPokec().edges, 30622564);
  EXPECT_EQ(CitPatents().nodes, 3774768);
  EXPECT_EQ(LiveJournal().edges, 68993773);
  EXPECT_EQ(Wikipedia().nodes, 25942254);
  EXPECT_EQ(Wikipedia().edges, 601038301);
}

TEST(GraphGenTest, ScaledDividesCounts) {
  GraphSpec scaled = LiveJournal().Scaled(100);
  EXPECT_EQ(scaled.nodes, 48475);
  EXPECT_EQ(scaled.edges, 689937);
}

TEST(GraphGenTest, AdjacencyIsBinaryAndSized) {
  GraphSpec spec = SocPokec().Scaled(2000);
  LocalMatrix adj = AdjacencyMatrix(spec, 256, 1);
  EXPECT_EQ(adj.rows(), spec.nodes);
  // Duplicates collapse, so nnz <= edges but should be in the ballpark.
  EXPECT_LE(adj.Nnz(), spec.edges);
  EXPECT_GT(adj.Nnz(), spec.edges / 4);
  // Spot-check values are exactly 1.
  for (int64_t bi = 0; bi < adj.grid().block_rows(); ++bi) {
    for (int64_t bj = 0; bj < adj.grid().block_cols(); ++bj) {
      for (Scalar v : adj.BlockAt(bi, bj).sparse().values()) {
        EXPECT_FLOAT_EQ(v, 1.0f);
      }
    }
  }
}

TEST(GraphGenTest, PowerLawSkewConcentratesEdges) {
  GraphSpec spec = SocPokec().Scaled(2000);
  LocalMatrix adj = AdjacencyMatrix(spec, 128, 1);
  // The first block row (hub nodes) must hold far more than a uniform share
  // of the edges.
  int64_t first_row_nnz = 0;
  for (int64_t bj = 0; bj < adj.grid().block_cols(); ++bj) {
    first_row_nnz += adj.BlockAt(0, bj).nnz();
  }
  const double uniform_share =
      static_cast<double>(adj.Nnz()) / adj.grid().block_rows();
  EXPECT_GT(static_cast<double>(first_row_nnz), 2.0 * uniform_share);
}

TEST(GraphGenTest, RowNormalizedLinkRowsSumToOne) {
  GraphSpec spec = SocPokec().Scaled(5000);
  LocalMatrix link = RowNormalizedLink(spec, 64, 2);
  // Row sums are 1 for rows with outgoing edges, 0 for dangling rows.
  for (int64_t r = 0; r < std::min<int64_t>(spec.nodes, 64); ++r) {
    double sum = 0;
    for (int64_t c = 0; c < spec.nodes; ++c) sum += link.At(r, c);
    EXPECT_TRUE(std::abs(sum - 1.0) < 1e-3 || sum == 0.0) << "row " << r;
  }
}

TEST(NetflixGenTest, ShapeAndSparsityMatchSpec) {
  NetflixSpec spec = NetflixSpec{}.Scaled(50);
  LocalMatrix ratings = NetflixRatings(spec, 512, 3);
  EXPECT_EQ(ratings.rows(), spec.users);
  EXPECT_EQ(ratings.cols(), spec.movies);
  const double sparsity = static_cast<double>(ratings.Nnz()) /
                          (static_cast<double>(spec.users) * spec.movies);
  EXPECT_NEAR(sparsity, spec.sparsity, spec.sparsity * 0.2);
}

TEST(NetflixGenTest, RatingsAreInRange) {
  NetflixSpec spec = NetflixSpec{}.Scaled(200);
  LocalMatrix ratings = NetflixRatings(spec, 256, 4);
  for (int64_t bi = 0; bi < ratings.grid().block_rows(); ++bi) {
    for (int64_t bj = 0; bj < ratings.grid().block_cols(); ++bj) {
      for (Scalar v : ratings.BlockAt(bi, bj).sparse().values()) {
        EXPECT_GE(v, 1.0f);
        EXPECT_LE(v, 10.0f);  // rare collisions may sum two ratings
      }
    }
  }
}

TEST(NetflixGenTest, FullSpecMatchesPaperDimensions) {
  NetflixSpec spec;
  EXPECT_EQ(spec.users, 480189);
  EXPECT_EQ(spec.movies, 17770);
}

}  // namespace
}  // namespace dmac
