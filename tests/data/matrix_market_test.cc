#include "data/matrix_market.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "data/synthetic.h"

namespace dmac {
namespace {

TEST(MatrixMarketTest, ParsesCoordinateReal) {
  const std::string mm =
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 4 3\n"
      "1 1 2.5\n"
      "3 4 -1\n"
      "2 2 7\n";
  auto m = ParseMatrixMarket(mm, 2);
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->shape(), (Shape{3, 4}));
  EXPECT_FLOAT_EQ(m->At(0, 0), 2.5f);
  EXPECT_FLOAT_EQ(m->At(2, 3), -1.0f);
  EXPECT_FLOAT_EQ(m->At(1, 1), 7.0f);
  EXPECT_EQ(m->Nnz(), 3);
}

TEST(MatrixMarketTest, ParsesPattern) {
  const std::string mm =
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 2\n"
      "2 1\n";
  auto m = ParseMatrixMarket(mm, 4);
  ASSERT_TRUE(m.ok());
  EXPECT_FLOAT_EQ(m->At(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(m->At(1, 0), 1.0f);
}

TEST(MatrixMarketTest, ParsesSymmetric) {
  const std::string mm =
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 2\n"
      "2 1 5\n"
      "3 3 1\n";
  auto m = ParseMatrixMarket(mm, 4);
  ASSERT_TRUE(m.ok());
  EXPECT_FLOAT_EQ(m->At(1, 0), 5.0f);
  EXPECT_FLOAT_EQ(m->At(0, 1), 5.0f);  // mirrored
  EXPECT_FLOAT_EQ(m->At(2, 2), 1.0f);  // diagonal not duplicated
  EXPECT_EQ(m->Nnz(), 3);
}

TEST(MatrixMarketTest, ParsesDenseArray) {
  const std::string mm =
      "%%MatrixMarket matrix array real general\n"
      "2 2\n"
      "1\n3\n2\n4\n";  // column-major
  auto m = ParseMatrixMarket(mm, 4);
  ASSERT_TRUE(m.ok());
  EXPECT_FLOAT_EQ(m->At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(m->At(1, 0), 3.0f);
  EXPECT_FLOAT_EQ(m->At(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(m->At(1, 1), 4.0f);
}

TEST(MatrixMarketTest, RejectsBadInput) {
  EXPECT_FALSE(ParseMatrixMarket("", 4).ok());
  EXPECT_FALSE(ParseMatrixMarket("garbage\n1 1 1\n", 4).ok());
  EXPECT_FALSE(
      ParseMatrixMarket("%%MatrixMarket matrix coordinate real general\n"
                        "2 2 1\n"
                        "3 1 1.0\n",  // row out of range
                        4)
          .ok());
  EXPECT_FALSE(
      ParseMatrixMarket("%%MatrixMarket matrix coordinate real general\n"
                        "2 2 2\n"
                        "1 1 1.0\n",  // truncated
                        4)
          .ok());
  EXPECT_FALSE(
      ParseMatrixMarket("%%MatrixMarket vector coordinate real general\n"
                        "2 2 0\n",
                        4)
          .ok());
}

TEST(MatrixMarketTest, WriteReadRoundTrip) {
  LocalMatrix original = SyntheticSparse(20, 16, 0.2, 8, 3);
  const std::string path = ::testing::TempDir() + "/roundtrip.mtx";
  ASSERT_TRUE(WriteMatrixMarket(original, path).ok());
  auto loaded = ReadMatrixMarket(path, 8);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->ApproxEqual(original, 1e-5));
  std::remove(path.c_str());
}

TEST(MatrixMarketTest, MissingFileReported) {
  EXPECT_EQ(ReadMatrixMarket("/nonexistent/file.mtx", 8).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace dmac
