// FormatCache tests (matrix/format_cache.h): conversion bit-identity
// against the uncached path, LRU eviction under a tight byte capacity,
// charge-hook refusal, and a concurrent multiply storm over one shared
// converted operand (matrix_test runs under TSan in CI, which turns the
// storm into a data-race check on the convert-under-lock design).
#include "matrix/format_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "matrix/block.h"
#include "matrix/block_ops.h"
#include "matrix/kernels.h"

namespace dmac {
namespace {

std::shared_ptr<const Block> SharedSparse(int64_t rows, int64_t cols,
                                          double sparsity, uint64_t seed) {
  return std::make_shared<const Block>(
      RandomSparseBlock(rows, cols, sparsity, seed));
}

TEST(FormatCacheTest, ConvertedCopyMatchesDirectTranspose) {
  FormatCache cache(/*capacity_bytes=*/64 << 20);
  auto src = SharedSparse(96, 80, 0.1, 1);

  auto csr = cache.Csr(src);
  ASSERT_TRUE(csr.ok()) << csr.status();

  const CscBlock direct = src->sparse().Transposed();
  ASSERT_EQ((*csr)->rows(), direct.rows());
  ASSERT_EQ((*csr)->cols(), direct.cols());
  EXPECT_EQ((*csr)->col_ptr(), direct.col_ptr());
  EXPECT_EQ((*csr)->row_idx(), direct.row_idx());
  EXPECT_EQ((*csr)->values(), direct.values());
}

TEST(FormatCacheTest, CachedMultiplyBitIdenticalToUncached) {
  // Aᵀ·B sparse×sparse through the cache-provided CSR must be bit-identical
  // to the kernel's own inline conversion: both hand SpGemmGustavson the
  // same row-major B.
  FormatCache cache(64 << 20);
  Block a = RandomSparseBlock(120, 90, 0.15, 2);
  auto b = SharedSparse(120, 70, 0.15, 3);

  GemmScratch scratch;
  DenseBlock uncached(90, 70);
  ASSERT_TRUE(
      MultiplyAccumulate(a, *b, true, false, &uncached, &scratch).ok());

  auto csr = cache.Csr(b);
  ASSERT_TRUE(csr.ok()) << csr.status();
  DenseBlock cached(90, 70);
  ASSERT_TRUE(MultiplyAccumulate(a, *b, true, false, &cached, &scratch,
                                 /*stats=*/nullptr, /*par=*/nullptr,
                                 csr->get())
                  .ok());

  for (int64_t c = 0; c < cached.cols(); ++c) {
    for (int64_t r = 0; r < cached.rows(); ++r) {
      ASSERT_EQ(cached.At(r, c), uncached.At(r, c))
          << "at (" << r << ", " << c << ")";
    }
  }
}

TEST(FormatCacheTest, SecondLookupHitsAndReturnsSamePointer) {
  FormatCache cache(64 << 20);
  auto src = SharedSparse(64, 64, 0.1, 4);

  auto first = cache.Csr(src);
  auto second = cache.Csr(src);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(first->get(), second->get());

  const FormatCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.entries, 1);
  EXPECT_GT(stats.bytes, 0);
}

TEST(FormatCacheTest, RejectsNullAndDenseSources) {
  FormatCache cache(64 << 20);
  EXPECT_EQ(cache.Csr(nullptr).status().code(),
            StatusCode::kInvalidArgument);
  auto dense = std::make_shared<const Block>(RandomDenseBlock(8, 8, 5));
  EXPECT_EQ(cache.Csr(dense).status().code(), StatusCode::kInvalidArgument);
}

TEST(FormatCacheTest, EvictsLeastRecentlyUsedUnderTightCapacity) {
  // Size the capacity from a real conversion so exactly one entry fits.
  auto probe = SharedSparse(64, 64, 0.2, 6);
  const int64_t one_entry = probe->sparse().Transposed().MemoryBytes();

  FormatCache cache(one_entry + one_entry / 2);
  auto a = SharedSparse(64, 64, 0.2, 7);
  auto b = SharedSparse(64, 64, 0.2, 8);

  ASSERT_TRUE(cache.Csr(a).ok());
  ASSERT_TRUE(cache.Csr(b).ok());  // evicts a's conversion

  FormatCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.entries, 1);
  EXPECT_LE(stats.bytes, one_entry + one_entry / 2);

  // `a` must reconvert (miss), proving it was the one evicted.
  ASSERT_TRUE(cache.Csr(a).ok());
  EXPECT_EQ(cache.GetStats().misses, 3);
}

TEST(FormatCacheTest, OversizedConversionReturnedUncached) {
  FormatCache cache(/*capacity_bytes=*/16);  // nothing real fits
  auto src = SharedSparse(64, 64, 0.2, 9);
  auto csr = cache.Csr(src);
  ASSERT_TRUE(csr.ok()) << csr.status();
  EXPECT_EQ((*csr)->nnz(), src->sparse().nnz());

  const FormatCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 0);
  EXPECT_EQ(stats.bytes, 0);
}

TEST(FormatCacheTest, ChargeRefusalBypassesCachingButStillConverts) {
  int64_t charged = 0;
  int64_t released = 0;
  FormatCache cache(
      64 << 20,
      [&charged](int64_t) {
        ++charged;
        return Status::ResourceExhausted("budget says no");
      },
      [&released](int64_t) { ++released; });
  auto src = SharedSparse(64, 64, 0.2, 10);

  auto csr = cache.Csr(src);
  ASSERT_TRUE(csr.ok()) << csr.status();  // caller still gets the copy
  EXPECT_EQ(cache.GetStats().entries, 0);
  EXPECT_EQ(charged, 1);
  EXPECT_EQ(released, 0);  // refused charges must not be released
}

TEST(FormatCacheTest, ReleaseHookBalancesChargesOnEvictionAndClear) {
  std::atomic<int64_t> outstanding{0};
  FormatCache cache(
      64 << 20,
      [&outstanding](int64_t bytes) {
        outstanding += bytes;
        return Status::Ok();
      },
      [&outstanding](int64_t bytes) { outstanding -= bytes; });
  for (uint64_t seed = 0; seed < 4; ++seed) {
    ASSERT_TRUE(cache.Csr(SharedSparse(48, 48, 0.2, 20 + seed)).ok());
  }
  EXPECT_EQ(outstanding.load(), cache.GetStats().bytes);
  cache.Clear();
  EXPECT_EQ(outstanding.load(), 0);
  EXPECT_EQ(cache.GetStats().entries, 0);
}

TEST(FormatCacheTest, ConcurrentStormSharesOneConversion) {
  // Many threads multiplying against the same B: the first lookup converts
  // under the cache lock, everyone else hits, and every thread's product
  // matches the serial result. Under TSan this validates the shared
  // converted block is safe for concurrent reads.
  FormatCache cache(64 << 20);
  Block a = RandomSparseBlock(100, 80, 0.15, 11);
  auto b = SharedSparse(100, 60, 0.15, 12);

  GemmScratch ref_scratch;
  DenseBlock reference(80, 60);
  ASSERT_TRUE(
      MultiplyAccumulate(a, *b, true, false, &reference, &ref_scratch).ok());

  constexpr int kThreads = 8;
  constexpr int kRounds = 16;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      GemmScratch scratch;
      for (int round = 0; round < kRounds; ++round) {
        auto csr = cache.Csr(b);
        if (!csr.ok()) {
          ++mismatches;
          return;
        }
        DenseBlock acc(80, 60);
        Status st =
            MultiplyAccumulate(a, *b, true, false, &acc, &scratch,
                               /*stats=*/nullptr, /*par=*/nullptr,
                               csr->get());
        if (!st.ok()) {
          ++mismatches;
          return;
        }
        for (int64_t c = 0; c < acc.cols(); ++c) {
          for (int64_t r = 0; r < acc.rows(); ++r) {
            if (acc.At(r, c) != reference.At(r, c)) ++mismatches;
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(mismatches.load(), 0);
  const FormatCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.misses, 1);  // the storm serialized into one conversion
  EXPECT_EQ(stats.hits, kThreads * kRounds - 1);
}

}  // namespace
}  // namespace dmac
