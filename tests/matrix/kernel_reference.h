// Test-only reference kernels: the seed's multiply loops, verbatim, before
// the packed/tiled kernel layer (src/matrix/kernels.h) replaced them. The
// differential tests in kernels_test.cc run every (representation,
// transpose-flag, shape, density) combination of the new kernels against
// these loops. Keep these dumb and obviously correct; never optimize them.
#pragma once

#include <cstdint>

#include "matrix/block.h"
#include "matrix/csc_block.h"
#include "matrix/dense_block.h"

namespace dmac {
namespace testref {

/// Seed dense GEMM: column-major jli ordering, contiguous axpy over A's
/// column, per-element zero skip on B.
inline void GemmDenseDense(const DenseBlock& a, const DenseBlock& b,
                           DenseBlock* acc) {
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  for (int64_t j = 0; j < n; ++j) {
    Scalar* c_col = acc->col(j);
    const Scalar* b_col = b.col(j);
    for (int64_t l = 0; l < k; ++l) {
      const Scalar t = b_col[l];
      if (t == Scalar{0}) continue;
      const Scalar* a_col = a.col(l);
      for (int64_t i = 0; i < m; ++i) c_col[i] += a_col[i] * t;
    }
  }
}

/// Seed acc += A_csc · B_dense.
inline void GemmSparseDense(const CscBlock& a, const DenseBlock& b,
                            DenseBlock* acc) {
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  const auto& rows = a.row_idx();
  const auto& vals = a.values();
  for (int64_t j = 0; j < n; ++j) {
    Scalar* c_col = acc->col(j);
    const Scalar* b_col = b.col(j);
    for (int64_t l = 0; l < k; ++l) {
      const Scalar t = b_col[l];
      if (t == Scalar{0}) continue;
      for (int32_t p = a.ColStart(l); p < a.ColEnd(l); ++p) {
        c_col[rows[p]] += vals[p] * t;
      }
    }
  }
}

/// Seed acc += A_dense · B_csc.
inline void GemmDenseSparse(const DenseBlock& a, const CscBlock& b,
                            DenseBlock* acc) {
  const int64_t m = a.rows();
  const int64_t n = b.cols();
  const auto& rows = b.row_idx();
  const auto& vals = b.values();
  for (int64_t j = 0; j < n; ++j) {
    Scalar* c_col = acc->col(j);
    for (int32_t p = b.ColStart(j); p < b.ColEnd(j); ++p) {
      const int64_t l = rows[p];
      const Scalar t = vals[p];
      const Scalar* a_col = a.col(l);
      for (int64_t i = 0; i < m; ++i) c_col[i] += a_col[i] * t;
    }
  }
}

/// Seed acc += A_csc · B_csc (dense accumulator).
inline void GemmSparseSparse(const CscBlock& a, const CscBlock& b,
                             DenseBlock* acc) {
  const int64_t n = b.cols();
  const auto& a_rows = a.row_idx();
  const auto& a_vals = a.values();
  const auto& b_rows = b.row_idx();
  const auto& b_vals = b.values();
  for (int64_t j = 0; j < n; ++j) {
    Scalar* c_col = acc->col(j);
    for (int32_t p = b.ColStart(j); p < b.ColEnd(j); ++p) {
      const int64_t l = b_rows[p];
      const Scalar t = b_vals[p];
      for (int32_t q = a.ColStart(l); q < a.ColEnd(l); ++q) {
        c_col[a_rows[q]] += a_vals[q] * t;
      }
    }
  }
}

/// Materialized transpose of any block, returned dense (the reference path
/// for the TransA/TransB kernel flags: transpose first, multiply with the
/// seed loops after).
inline DenseBlock DenseTranspose(const Block& x) {
  DenseBlock out(x.cols(), x.rows());
  for (int64_t c = 0; c < x.cols(); ++c) {
    for (int64_t r = 0; r < x.rows(); ++r) {
      out.Set(c, r, x.At(r, c));
    }
  }
  return out;
}

/// Reference op(A)·op(B) with double accumulation — the tolerance oracle
/// for the blocked kernel, whose k-split accumulation order differs from
/// the seed's.
inline DenseBlock WideMultiply(const Block& a, const Block& b, bool trans_a,
                               bool trans_b) {
  const int64_t m = trans_a ? a.cols() : a.rows();
  const int64_t k = trans_a ? a.rows() : a.cols();
  const int64_t n = trans_b ? b.rows() : b.cols();
  DenseBlock c(m, n);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0;
      for (int64_t l = 0; l < k; ++l) {
        const Scalar av = trans_a ? a.At(l, i) : a.At(i, l);
        const Scalar bv = trans_b ? b.At(j, l) : b.At(l, j);
        acc += static_cast<double>(av) * bv;
      }
      c.Set(i, j, static_cast<Scalar>(acc));
    }
  }
  return c;
}

}  // namespace testref
}  // namespace dmac
