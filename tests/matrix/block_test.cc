#include "matrix/block.h"

#include <gtest/gtest.h>

#include "matrix/block_ops.h"

namespace dmac {
namespace {

Block SmallDense() {
  DenseBlock d(2, 3);
  d.Set(0, 0, 1);
  d.Set(1, 2, 5);
  return Block(std::move(d));
}

Block SmallSparse() {
  CscBuilder b(2, 3);
  b.Add(0, 0, 1);
  b.Add(1, 2, 5);
  return Block(b.Build());
}

TEST(BlockTest, KindDiscrimination) {
  EXPECT_TRUE(SmallDense().IsDense());
  EXPECT_FALSE(SmallDense().IsSparse());
  EXPECT_TRUE(SmallSparse().IsSparse());
  EXPECT_EQ(SmallSparse().kind(), BlockKind::kSparse);
}

TEST(BlockTest, GenericAccessorsAgreeAcrossFormats) {
  Block d = SmallDense();
  Block s = SmallSparse();
  ASSERT_EQ(d.shape(), s.shape());
  for (int64_t r = 0; r < 2; ++r) {
    for (int64_t c = 0; c < 3; ++c) {
      EXPECT_FLOAT_EQ(d.At(r, c), s.At(r, c));
    }
  }
  EXPECT_EQ(d.nnz(), 2);
  EXPECT_EQ(s.nnz(), 2);
}

TEST(BlockTest, ToDenseFromSparse) {
  DenseBlock d = SmallSparse().ToDense();
  EXPECT_FLOAT_EQ(d.At(0, 0), 1);
  EXPECT_FLOAT_EQ(d.At(1, 2), 5);
  EXPECT_FLOAT_EQ(d.At(0, 1), 0);
}

TEST(BlockTest, ToSparseFromDense) {
  CscBlock s = SmallDense().ToSparse();
  EXPECT_EQ(s.nnz(), 2);
  EXPECT_FLOAT_EQ(s.At(1, 2), 5);
}

TEST(BlockTest, RoundTripPreservesValues) {
  Block original = SmallDense();
  Block round = Block(Block(original.ToSparse()).ToDense());
  EXPECT_TRUE(ApproxEqual(original, round, 0));
}

TEST(BlockTest, TransposedDense) {
  Block t = SmallDense().Transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_FLOAT_EQ(t.At(2, 1), 5);
}

TEST(BlockTest, TransposedSparse) {
  Block t = SmallSparse().Transposed();
  EXPECT_TRUE(t.IsSparse());
  EXPECT_FLOAT_EQ(t.At(0, 0), 1);
  EXPECT_FLOAT_EQ(t.At(2, 1), 5);
}

TEST(BlockTest, CompactedPicksSparseForSparseData) {
  // 2 non-zeros out of 6 = 1/3 density < 0.5 threshold.
  Block c = SmallDense().Compacted(0.5);
  EXPECT_TRUE(c.IsSparse());
}

TEST(BlockTest, CompactedPicksDenseForDenseData) {
  DenseBlock d(2, 2);
  for (int64_t r = 0; r < 2; ++r) {
    for (int64_t c = 0; c < 2; ++c) d.Set(r, c, 1.0f);
  }
  Block sparse(Block(std::move(d)).ToSparse());
  Block c = sparse.Compacted(0.5);
  EXPECT_TRUE(c.IsDense());
}

TEST(BlockTest, RandomDenseDeterministic) {
  Block a = RandomDenseBlock(8, 8, 77);
  Block b = RandomDenseBlock(8, 8, 77);
  EXPECT_TRUE(ApproxEqual(a, b, 0));
  Block c = RandomDenseBlock(8, 8, 78);
  EXPECT_FALSE(ApproxEqual(a, c, 1e-9));
}

TEST(BlockTest, RandomSparseRespectsSparsityRoughly) {
  Block b = RandomSparseBlock(100, 100, 0.1, 5);
  // Collisions only reduce the count; expect within 15% of target.
  EXPECT_GT(b.nnz(), 850);
  EXPECT_LE(b.nnz(), 1000);
}

TEST(BlockTest, RandomBlockSeedVariesByNameAndIndex) {
  const uint64_t s1 = RandomBlockSeed(1, "W", 0, 0);
  EXPECT_NE(s1, RandomBlockSeed(1, "H", 0, 0));
  EXPECT_NE(s1, RandomBlockSeed(1, "W", 1, 0));
  EXPECT_NE(s1, RandomBlockSeed(1, "W", 0, 1));
  EXPECT_NE(s1, RandomBlockSeed(2, "W", 0, 0));
  EXPECT_EQ(s1, RandomBlockSeed(1, "W", 0, 0));
}

TEST(BlockTest, MemoryBytesTracksRepresentation) {
  Block d = SmallDense();
  Block s = SmallSparse();
  EXPECT_EQ(d.MemoryBytes(), 4 * 2 * 3);
  EXPECT_EQ(s.MemoryBytes(), 4 * 4 + 8 * 2);
}

}  // namespace
}  // namespace dmac
