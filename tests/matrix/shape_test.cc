#include "matrix/shape.h"

#include <gtest/gtest.h>

namespace dmac {
namespace {

TEST(ShapeTest, Basics) {
  Shape s{3, 7};
  EXPECT_EQ(s.NumElements(), 21);
  EXPECT_EQ(s.Transposed(), (Shape{7, 3}));
  EXPECT_EQ(s.ToString(), "3x7");
  EXPECT_TRUE(s == (Shape{3, 7}));
  EXPECT_TRUE(s != (Shape{7, 3}));
}

TEST(BlockGridTest, NumBlocksRoundsUp) {
  EXPECT_EQ(NumBlocks(10, 4), 3);
  EXPECT_EQ(NumBlocks(8, 4), 2);
  EXPECT_EQ(NumBlocks(1, 4), 1);
  EXPECT_EQ(NumBlocks(4, 4), 1);
}

TEST(BlockGridTest, TrailingBlockExtent) {
  EXPECT_EQ(BlockExtent(10, 4, 0), 4);
  EXPECT_EQ(BlockExtent(10, 4, 1), 4);
  EXPECT_EQ(BlockExtent(10, 4, 2), 2);  // trailing remainder
  EXPECT_EQ(BlockExtent(8, 4, 1), 4);   // exact fit
}

TEST(BlockGridTest, GridArithmetic) {
  BlockGrid grid{{10, 7}, 4};
  EXPECT_EQ(grid.block_rows(), 3);
  EXPECT_EQ(grid.block_cols(), 2);
  EXPECT_EQ(grid.num_blocks(), 6);
  EXPECT_EQ(grid.BlockShape(0, 0), (Shape{4, 4}));
  EXPECT_EQ(grid.BlockShape(2, 1), (Shape{2, 3}));
}

TEST(BlockGridTest, BlockShapesTileTheMatrix) {
  BlockGrid grid{{23, 17}, 5};
  int64_t total = 0;
  for (int64_t bi = 0; bi < grid.block_rows(); ++bi) {
    for (int64_t bj = 0; bj < grid.block_cols(); ++bj) {
      total += grid.BlockShape(bi, bj).NumElements();
    }
  }
  EXPECT_EQ(total, grid.matrix.NumElements());
}

TEST(BlockGridTest, SingleBlockGrid) {
  BlockGrid grid{{5, 5}, 100};
  EXPECT_EQ(grid.num_blocks(), 1);
  EXPECT_EQ(grid.BlockShape(0, 0), (Shape{5, 5}));
}

}  // namespace
}  // namespace dmac
