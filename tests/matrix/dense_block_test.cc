#include "matrix/dense_block.h"

#include <gtest/gtest.h>

namespace dmac {
namespace {

TEST(DenseBlockTest, ConstructsZeroed) {
  DenseBlock b(3, 4);
  EXPECT_EQ(b.rows(), 3);
  EXPECT_EQ(b.cols(), 4);
  for (int64_t c = 0; c < 4; ++c) {
    for (int64_t r = 0; r < 3; ++r) EXPECT_EQ(b.At(r, c), 0.0f);
  }
}

TEST(DenseBlockTest, SetAndGet) {
  DenseBlock b(2, 2);
  b.Set(0, 1, 3.5f);
  b.Set(1, 0, -2.0f);
  EXPECT_FLOAT_EQ(b.At(0, 1), 3.5f);
  EXPECT_FLOAT_EQ(b.At(1, 0), -2.0f);
  EXPECT_FLOAT_EQ(b.At(0, 0), 0.0f);
}

TEST(DenseBlockTest, ColumnMajorLayout) {
  DenseBlock b(3, 2);
  b.Set(2, 1, 7.0f);
  // Column 1 starts at offset rows()=3; element (2,1) is at offset 5.
  EXPECT_FLOAT_EQ(b.data()[5], 7.0f);
  EXPECT_FLOAT_EQ(b.col(1)[2], 7.0f);
}

TEST(DenseBlockTest, AccumulateAdds) {
  DenseBlock b(2, 2);
  b.Accumulate(1, 1, 2.0f);
  b.Accumulate(1, 1, 3.0f);
  EXPECT_FLOAT_EQ(b.At(1, 1), 5.0f);
}

TEST(DenseBlockTest, ClearZeroes) {
  DenseBlock b(2, 3);
  b.Set(1, 2, 9.0f);
  b.Clear();
  EXPECT_EQ(b.CountNonZeros(), 0);
}

TEST(DenseBlockTest, CountNonZeros) {
  DenseBlock b(4, 4);
  EXPECT_EQ(b.CountNonZeros(), 0);
  b.Set(0, 0, 1.0f);
  b.Set(3, 3, -1.0f);
  EXPECT_EQ(b.CountNonZeros(), 2);
}

TEST(DenseBlockTest, MemoryBytesIsFourMN) {
  DenseBlock b(10, 20);
  EXPECT_EQ(b.MemoryBytes(), 4 * 10 * 20);
}

TEST(DenseBlockTest, CopyIsDeep) {
  DenseBlock a(2, 2);
  a.Set(0, 0, 1.0f);
  DenseBlock b = a;
  b.Set(0, 0, 2.0f);
  EXPECT_FLOAT_EQ(a.At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(b.At(0, 0), 2.0f);
}

TEST(DenseBlockTest, MoveTransfersOwnership) {
  DenseBlock a(2, 2);
  a.Set(1, 1, 4.0f);
  DenseBlock b = std::move(a);
  EXPECT_FLOAT_EQ(b.At(1, 1), 4.0f);
  EXPECT_EQ(a.rows(), 0);  // NOLINT(bugprone-use-after-move): documented state
}

TEST(DenseBlockTest, EmptyBlock) {
  DenseBlock b(0, 0);
  EXPECT_EQ(b.MemoryBytes(), 0);
  EXPECT_EQ(b.CountNonZeros(), 0);
}

}  // namespace
}  // namespace dmac
