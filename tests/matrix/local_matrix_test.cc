#include "matrix/local_matrix.h"

#include <gtest/gtest.h>

namespace dmac {
namespace {

TEST(LocalMatrixTest, ZerosHasExpectedGrid) {
  LocalMatrix m = LocalMatrix::Zeros({10, 7}, 4);
  EXPECT_EQ(m.grid().block_rows(), 3);
  EXPECT_EQ(m.grid().block_cols(), 2);
  EXPECT_EQ(m.BlockAt(2, 1).rows(), 2);  // trailing block 2x3
  EXPECT_EQ(m.BlockAt(2, 1).cols(), 3);
  EXPECT_EQ(m.Nnz(), 0);
}

TEST(LocalMatrixTest, AtRoutesThroughBlocks) {
  LocalMatrix m = LocalMatrix::RandomDense({9, 9}, 4, 3);
  // Spot-check against the owning block.
  EXPECT_FLOAT_EQ(m.At(5, 7), m.BlockAt(1, 1).At(1, 3));
  EXPECT_FLOAT_EQ(m.At(8, 8), m.BlockAt(2, 2).At(0, 0));
}

TEST(LocalMatrixTest, RandomDeterministicPerSeed) {
  LocalMatrix a = LocalMatrix::RandomDense({8, 8}, 4, 5);
  LocalMatrix b = LocalMatrix::RandomDense({8, 8}, 4, 5);
  EXPECT_TRUE(a.ApproxEqual(b, 0));
  LocalMatrix c = LocalMatrix::RandomDense({8, 8}, 4, 6);
  EXPECT_FALSE(a.ApproxEqual(c, 1e-6));
}

TEST(LocalMatrixTest, MultiplyMatchesSingleBlockReference) {
  // Same data with different blockings must multiply identically.
  LocalMatrix a_small = LocalMatrix::RandomDense({12, 10}, 3, 1);
  LocalMatrix b_small = LocalMatrix::RandomDense({10, 8}, 3, 2);
  auto c_small = a_small.Multiply(b_small);
  ASSERT_TRUE(c_small.ok());

  // Re-block the same values with block size 5 via element copy.
  LocalMatrix a_big = LocalMatrix::Zeros({12, 10}, 5);
  LocalMatrix b_big = LocalMatrix::Zeros({10, 8}, 5);
  for (int64_t r = 0; r < 12; ++r) {
    for (int64_t c = 0; c < 10; ++c) {
      a_big.BlockAt(r / 5, c / 5).dense().Set(r % 5, c % 5, a_small.At(r, c));
    }
  }
  for (int64_t r = 0; r < 10; ++r) {
    for (int64_t c = 0; c < 8; ++c) {
      b_big.BlockAt(r / 5, c / 5).dense().Set(r % 5, c % 5, b_small.At(r, c));
    }
  }
  auto c_big = a_big.Multiply(b_big);
  ASSERT_TRUE(c_big.ok());
  for (int64_t r = 0; r < 12; ++r) {
    for (int64_t c = 0; c < 8; ++c) {
      EXPECT_NEAR(c_small->At(r, c), c_big->At(r, c), 1e-3);
    }
  }
}

TEST(LocalMatrixTest, MultiplyValidatesShapes) {
  LocalMatrix a = LocalMatrix::RandomDense({4, 5}, 2, 1);
  LocalMatrix b = LocalMatrix::RandomDense({4, 5}, 2, 2);
  EXPECT_EQ(a.Multiply(b).status().code(), StatusCode::kDimensionMismatch);
}

TEST(LocalMatrixTest, MultiplyValidatesBlockSizes) {
  LocalMatrix a = LocalMatrix::RandomDense({4, 4}, 2, 1);
  LocalMatrix b = LocalMatrix::RandomDense({4, 4}, 4, 2);
  EXPECT_FALSE(a.Multiply(b).ok());
}

TEST(LocalMatrixTest, CellwiseOpsMatchElementwise) {
  LocalMatrix a = LocalMatrix::RandomDense({7, 6}, 3, 1);
  LocalMatrix b = LocalMatrix::RandomDense({7, 6}, 3, 2);
  auto add = a.Add(b);
  auto sub = a.Subtract(b);
  auto mul = a.CellMultiply(b);
  auto div = a.CellDivide(b);
  ASSERT_TRUE(add.ok() && sub.ok() && mul.ok() && div.ok());
  for (int64_t r = 0; r < 7; ++r) {
    for (int64_t c = 0; c < 6; ++c) {
      EXPECT_NEAR(add->At(r, c), a.At(r, c) + b.At(r, c), 1e-5);
      EXPECT_NEAR(sub->At(r, c), a.At(r, c) - b.At(r, c), 1e-5);
      EXPECT_NEAR(mul->At(r, c), a.At(r, c) * b.At(r, c), 1e-5);
      EXPECT_NEAR(div->At(r, c), a.At(r, c) / b.At(r, c), 1e-3);
    }
  }
}

TEST(LocalMatrixTest, TransposeRoundTrip) {
  LocalMatrix a = LocalMatrix::RandomSparse({11, 6}, 4, 0.3, 9);
  LocalMatrix t = a.Transposed();
  EXPECT_EQ(t.rows(), 6);
  EXPECT_EQ(t.cols(), 11);
  for (int64_t r = 0; r < 11; ++r) {
    for (int64_t c = 0; c < 6; ++c) {
      EXPECT_FLOAT_EQ(a.At(r, c), t.At(c, r));
    }
  }
  EXPECT_TRUE(t.Transposed().ApproxEqual(a, 0));
}

TEST(LocalMatrixTest, ScalarOps) {
  LocalMatrix a = LocalMatrix::RandomDense({5, 5}, 2, 4);
  LocalMatrix scaled = a.ScalarMultiply(3.0f);
  LocalMatrix shifted = a.ScalarAdd(-1.0f);
  for (int64_t r = 0; r < 5; ++r) {
    for (int64_t c = 0; c < 5; ++c) {
      EXPECT_NEAR(scaled.At(r, c), 3.0f * a.At(r, c), 1e-5);
      EXPECT_NEAR(shifted.At(r, c), a.At(r, c) - 1.0f, 1e-5);
    }
  }
}

TEST(LocalMatrixTest, SumAndSumSquares) {
  LocalMatrix a = LocalMatrix::RandomDense({6, 7}, 3, 8);
  double sum = 0, sq = 0;
  for (int64_t r = 0; r < 6; ++r) {
    for (int64_t c = 0; c < 7; ++c) {
      sum += a.At(r, c);
      sq += static_cast<double>(a.At(r, c)) * a.At(r, c);
    }
  }
  EXPECT_NEAR(a.Sum(), sum, 1e-3);
  EXPECT_NEAR(a.SumSquares(), sq, 1e-3);
}

TEST(LocalMatrixTest, CompactedShrinksSparseData) {
  LocalMatrix a = LocalMatrix::RandomSparse({20, 20}, 10, 0.05, 3);
  // Densify everything first.
  for (int64_t bi = 0; bi < a.grid().block_rows(); ++bi) {
    for (int64_t bj = 0; bj < a.grid().block_cols(); ++bj) {
      a.BlockAt(bi, bj) = Block(a.BlockAt(bi, bj).ToDense());
    }
  }
  const int64_t dense_bytes = a.MemoryBytes();
  LocalMatrix c = a.Compacted();
  EXPECT_LT(c.MemoryBytes(), dense_bytes);
  EXPECT_TRUE(c.ApproxEqual(a, 0));
}

TEST(LocalMatrixTest, FromBlockSingleton) {
  DenseBlock d(3, 2);
  d.Set(2, 1, 5.0f);
  LocalMatrix m = LocalMatrix::FromBlock(Block(std::move(d)));
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_FLOAT_EQ(m.At(2, 1), 5.0f);
}

TEST(LocalMatrixTest, RandomSparseHitsTargetSparsity) {
  LocalMatrix m = LocalMatrix::RandomSparse({100, 100}, 25, 0.1, 13);
  EXPECT_NEAR(static_cast<double>(m.Nnz()) / (100 * 100), 0.1, 0.02);
}

}  // namespace
}  // namespace dmac
