#include "matrix/csc_block.h"

#include <gtest/gtest.h>

namespace dmac {
namespace {

CscBlock PaperFigure5Block() {
  // The example of paper Fig. 5 (4x3):
  //   [ .  2  . ]        values:     [2 3 2 2 4 2 1]... we encode the
  //   [ 3  .  4 ]        paper's layout column-wise below.
  //   [ .  2  1 ]
  //   [ .  .  2 ]
  CscBuilder builder(4, 3);
  builder.Add(1, 0, 3);
  builder.Add(0, 1, 2);
  builder.Add(2, 1, 2);
  builder.Add(1, 2, 4);
  builder.Add(2, 2, 1);
  builder.Add(3, 2, 2);
  return builder.Build();
}

TEST(CscBlockTest, BuilderProducesSortedCsc) {
  CscBlock b = PaperFigure5Block();
  EXPECT_EQ(b.rows(), 4);
  EXPECT_EQ(b.cols(), 3);
  EXPECT_EQ(b.nnz(), 6);
  // Column start index array, as in Fig. 5: 0, 1, 3, 6.
  ASSERT_EQ(b.col_ptr().size(), 4u);
  EXPECT_EQ(b.col_ptr()[0], 0);
  EXPECT_EQ(b.col_ptr()[1], 1);
  EXPECT_EQ(b.col_ptr()[2], 3);
  EXPECT_EQ(b.col_ptr()[3], 6);
}

TEST(CscBlockTest, AtFindsStoredValues) {
  CscBlock b = PaperFigure5Block();
  EXPECT_FLOAT_EQ(b.At(1, 0), 3);
  EXPECT_FLOAT_EQ(b.At(0, 1), 2);
  EXPECT_FLOAT_EQ(b.At(2, 1), 2);
  EXPECT_FLOAT_EQ(b.At(1, 2), 4);
  EXPECT_FLOAT_EQ(b.At(2, 2), 1);
  EXPECT_FLOAT_EQ(b.At(3, 2), 2);
}

TEST(CscBlockTest, AtReturnsZeroForAbsent) {
  CscBlock b = PaperFigure5Block();
  EXPECT_FLOAT_EQ(b.At(0, 0), 0);
  EXPECT_FLOAT_EQ(b.At(3, 0), 0);
  EXPECT_FLOAT_EQ(b.At(1, 1), 0);
}

TEST(CscBlockTest, BuilderSumsDuplicates) {
  CscBuilder builder(2, 2);
  builder.Add(0, 0, 1.5f);
  builder.Add(0, 0, 2.5f);
  CscBlock b = builder.Build();
  EXPECT_EQ(b.nnz(), 1);
  EXPECT_FLOAT_EQ(b.At(0, 0), 4.0f);
}

TEST(CscBlockTest, BuilderDropsZeros) {
  CscBuilder builder(2, 2);
  builder.Add(0, 0, 0.0f);
  builder.Add(1, 1, 1.0f);
  builder.Add(0, 1, 2.0f);
  builder.Add(0, 1, -2.0f);  // cancels to zero
  CscBlock b = builder.Build();
  EXPECT_EQ(b.nnz(), 1);
  EXPECT_FLOAT_EQ(b.At(1, 1), 1.0f);
}

TEST(CscBlockTest, MemoryBytesMatchesPaperFormula) {
  // Mem(b) = 4(n+1) + 8*nnz: 4-byte col pointers, 8 bytes per non-zero.
  CscBlock b = PaperFigure5Block();
  EXPECT_EQ(b.MemoryBytes(), 4 * (3 + 1) + 8 * 6);
}

TEST(CscBlockTest, EmptyBlock) {
  CscBlock b(5, 7);
  EXPECT_EQ(b.nnz(), 0);
  EXPECT_FLOAT_EQ(b.At(4, 6), 0);
  EXPECT_DOUBLE_EQ(b.Sparsity(), 0.0);
}

TEST(CscBlockTest, SparsityFraction) {
  CscBlock b = PaperFigure5Block();
  EXPECT_NEAR(b.Sparsity(), 6.0 / 12.0, 1e-9);
}

TEST(CscBlockTest, TransposeRoundTrip) {
  CscBlock b = PaperFigure5Block();
  CscBlock tt = b.Transposed().Transposed();
  ASSERT_EQ(tt.rows(), b.rows());
  ASSERT_EQ(tt.cols(), b.cols());
  for (int64_t r = 0; r < b.rows(); ++r) {
    for (int64_t c = 0; c < b.cols(); ++c) {
      EXPECT_FLOAT_EQ(tt.At(r, c), b.At(r, c)) << r << "," << c;
    }
  }
}

TEST(CscBlockTest, TransposeSwapsCoordinates) {
  CscBlock t = PaperFigure5Block().Transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 4);
  EXPECT_FLOAT_EQ(t.At(0, 1), 3);
  EXPECT_FLOAT_EQ(t.At(2, 1), 4);
  EXPECT_FLOAT_EQ(t.At(2, 3), 2);
}

TEST(CscBlockTest, CopyIsIndependent) {
  CscBlock a = PaperFigure5Block();
  CscBlock b = a;
  EXPECT_EQ(b.nnz(), a.nnz());
  a = CscBlock(1, 1);
  EXPECT_EQ(b.nnz(), 6);  // b unaffected
}

TEST(CscBlockTest, BuilderReusableAfterBuild) {
  CscBuilder builder(2, 2);
  builder.Add(0, 0, 1.0f);
  CscBlock first = builder.Build();
  builder.Add(1, 1, 2.0f);
  CscBlock second = builder.Build();
  EXPECT_EQ(first.nnz(), 1);
  EXPECT_EQ(second.nnz(), 1);
  EXPECT_FLOAT_EQ(second.At(1, 1), 2.0f);
  EXPECT_FLOAT_EQ(second.At(0, 0), 0.0f);
}

}  // namespace
}  // namespace dmac
