#include "matrix/block_ops.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.h"

namespace dmac {
namespace {

/// Reference dense multiply for oracle checks.
DenseBlock NaiveMultiply(const Block& a, const Block& b) {
  DenseBlock c(a.rows(), b.cols());
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < b.cols(); ++j) {
      double acc = 0;
      for (int64_t k = 0; k < a.cols(); ++k) {
        acc += static_cast<double>(a.At(i, k)) * b.At(k, j);
      }
      c.Set(i, j, static_cast<Scalar>(acc));
    }
  }
  return c;
}

Block MakeOperand(bool sparse, int64_t rows, int64_t cols, uint64_t seed,
                  double sparsity = 0.3) {
  return sparse ? RandomSparseBlock(rows, cols, sparsity, seed)
                : RandomDenseBlock(rows, cols, seed);
}

// ---- multiply: all four representation combinations --------------------

class MultiplyFormatsTest
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(MultiplyFormatsTest, MatchesNaiveOracle) {
  const auto [a_sparse, b_sparse] = GetParam();
  Block a = MakeOperand(a_sparse, 9, 13, 1);
  Block b = MakeOperand(b_sparse, 13, 7, 2);
  auto c = Multiply(a, b);
  ASSERT_TRUE(c.ok()) << c.status();
  DenseBlock expected = NaiveMultiply(a, b);
  EXPECT_TRUE(ApproxEqual(*c, Block(expected), 1e-3));
}

TEST_P(MultiplyFormatsTest, AccumulateAddsOnTopOfExisting) {
  const auto [a_sparse, b_sparse] = GetParam();
  Block a = MakeOperand(a_sparse, 5, 6, 3);
  Block b = MakeOperand(b_sparse, 6, 4, 4);
  DenseBlock acc(5, 4);
  acc.Set(0, 0, 100.0f);
  ASSERT_TRUE(MultiplyAccumulate(a, b, &acc).ok());
  DenseBlock expected = NaiveMultiply(a, b);
  EXPECT_NEAR(acc.At(0, 0), expected.At(0, 0) + 100.0f, 1e-2);
  EXPECT_NEAR(acc.At(3, 3), expected.At(3, 3), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, MultiplyFormatsTest,
    ::testing::Combine(::testing::Bool(), ::testing::Bool()),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) ? "SparseA" : "DenseA") +
             (std::get<1>(info.param) ? "SparseB" : "DenseB");
    });

TEST(MultiplyTest, DimensionMismatchRejected) {
  Block a = RandomDenseBlock(3, 4, 1);
  Block b = RandomDenseBlock(5, 2, 2);
  EXPECT_EQ(Multiply(a, b).status().code(), StatusCode::kDimensionMismatch);
}

TEST(MultiplyTest, AccumulatorShapeChecked) {
  Block a = RandomDenseBlock(3, 4, 1);
  Block b = RandomDenseBlock(4, 2, 2);
  DenseBlock acc(3, 3);
  EXPECT_EQ(MultiplyAccumulate(a, b, &acc).code(),
            StatusCode::kDimensionMismatch);
}

TEST(MultiplyTest, IdentityIsNeutral) {
  Block a = RandomDenseBlock(6, 6, 9);
  CscBuilder eye(6, 6);
  for (int i = 0; i < 6; ++i) eye.Add(i, i, 1.0f);
  Block id(eye.Build());
  auto left = Multiply(id, a);
  auto right = Multiply(a, id);
  ASSERT_TRUE(left.ok() && right.ok());
  EXPECT_TRUE(ApproxEqual(*left, a, 1e-5));
  EXPECT_TRUE(ApproxEqual(*right, a, 1e-5));
}

TEST(MultiplySparseTest, MatchesDenseMultiply) {
  Block a = RandomSparseBlock(12, 15, 0.2, 5);
  Block b = RandomSparseBlock(15, 9, 0.2, 6);
  auto sparse = MultiplySparse(a.sparse(), b.sparse());
  ASSERT_TRUE(sparse.ok());
  auto dense = Multiply(a, b);
  ASSERT_TRUE(dense.ok());
  EXPECT_TRUE(ApproxEqual(Block(*sparse), *dense, 1e-3));
}

TEST(MultiplySparseTest, ResultIsStructurallySparse) {
  CscBuilder ab(4, 4);
  ab.Add(0, 0, 2.0f);
  Block a(ab.Build());
  auto c = MultiplySparse(a.sparse(), a.sparse());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->nnz(), 1);
  EXPECT_FLOAT_EQ(c->At(0, 0), 4.0f);
}

TEST(MultiplySparseTest, DimensionMismatchRejected) {
  CscBlock a(3, 4), b(5, 6);
  EXPECT_FALSE(MultiplySparse(a, b).ok());
}

// ---- element-wise operators across format combinations ------------------

class CellwiseFormatsTest
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {
 protected:
  void SetUp() override {
    const auto [a_sparse, b_sparse] = GetParam();
    a_ = MakeOperand(a_sparse, 8, 11, 21);
    b_ = MakeOperand(b_sparse, 8, 11, 22);
  }
  Block a_, b_;
};

TEST_P(CellwiseFormatsTest, AddMatchesElementwise) {
  auto c = Add(a_, b_);
  ASSERT_TRUE(c.ok());
  for (int64_t r = 0; r < 8; ++r) {
    for (int64_t j = 0; j < 11; ++j) {
      EXPECT_NEAR(c->At(r, j), a_.At(r, j) + b_.At(r, j), 1e-5);
    }
  }
}

TEST_P(CellwiseFormatsTest, SubtractMatchesElementwise) {
  auto c = Subtract(a_, b_);
  ASSERT_TRUE(c.ok());
  for (int64_t r = 0; r < 8; ++r) {
    for (int64_t j = 0; j < 11; ++j) {
      EXPECT_NEAR(c->At(r, j), a_.At(r, j) - b_.At(r, j), 1e-5);
    }
  }
}

TEST_P(CellwiseFormatsTest, CellMultiplyMatchesElementwise) {
  auto c = CellMultiply(a_, b_);
  ASSERT_TRUE(c.ok());
  for (int64_t r = 0; r < 8; ++r) {
    for (int64_t j = 0; j < 11; ++j) {
      EXPECT_NEAR(c->At(r, j), a_.At(r, j) * b_.At(r, j), 1e-5);
    }
  }
}

TEST_P(CellwiseFormatsTest, SubtractSelfIsZero) {
  auto c = Subtract(a_, a_);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->nnz(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, CellwiseFormatsTest,
    ::testing::Combine(::testing::Bool(), ::testing::Bool()),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) ? "SparseA" : "DenseA") +
             (std::get<1>(info.param) ? "SparseB" : "DenseB");
    });

TEST(CellwiseTest, AddKeepsSparseWhenBothSparse) {
  Block a = RandomSparseBlock(10, 10, 0.1, 1);
  Block b = RandomSparseBlock(10, 10, 0.1, 2);
  auto c = Add(a, b);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->IsSparse());
}

TEST(CellwiseTest, CellMultiplyKeepsSparseWhenEitherSparse) {
  Block a = RandomSparseBlock(10, 10, 0.1, 1);
  Block b = RandomDenseBlock(10, 10, 2);
  auto c = CellMultiply(a, b);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->IsSparse());
  auto c2 = CellMultiply(b, a);
  ASSERT_TRUE(c2.ok());
  EXPECT_TRUE(c2->IsSparse());
}

TEST(CellwiseTest, DivideSparseNumeratorKeepsPattern) {
  CscBuilder nb(2, 2);
  nb.Add(0, 0, 6.0f);
  Block num(nb.Build());
  Block den = RandomDenseBlock(2, 2, 3);
  auto c = CellDivide(num, den);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->IsSparse());
  EXPECT_EQ(c->nnz(), 1);
  EXPECT_NEAR(c->At(0, 0), 6.0f / den.At(0, 0), 1e-4);
}

TEST(CellwiseTest, DivideByZeroYieldsInf) {
  DenseBlock n(1, 1), d(1, 1);
  n.Set(0, 0, 1.0f);
  auto c = CellDivide(Block(std::move(n)), Block(std::move(d)));
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(std::isinf(c->At(0, 0)));
}

TEST(CellwiseTest, ShapeMismatchRejected) {
  Block a = RandomDenseBlock(2, 3, 1);
  Block b = RandomDenseBlock(3, 2, 2);
  EXPECT_FALSE(Add(a, b).ok());
  EXPECT_FALSE(Subtract(a, b).ok());
  EXPECT_FALSE(CellMultiply(a, b).ok());
  EXPECT_FALSE(CellDivide(a, b).ok());
}

// ---- scalar ops, reductions, compaction ---------------------------------

TEST(ScalarOpsTest, MultiplyScalesBothFormats) {
  for (bool sparse : {false, true}) {
    Block a = MakeOperand(sparse, 5, 5, 31);
    Block c = ScalarMultiply(a, 2.0f);
    EXPECT_EQ(c.IsSparse(), sparse);
    for (int64_t r = 0; r < 5; ++r) {
      for (int64_t j = 0; j < 5; ++j) {
        EXPECT_NEAR(c.At(r, j), 2.0f * a.At(r, j), 1e-5);
      }
    }
  }
}

TEST(ScalarOpsTest, AddZeroIsIdentity) {
  Block a = RandomSparseBlock(5, 5, 0.2, 31);
  Block c = ScalarAdd(a, 0.0f);
  EXPECT_TRUE(c.IsSparse());
  EXPECT_TRUE(ApproxEqual(a, c, 0));
}

TEST(ScalarOpsTest, AddNonZeroDensifiesSparse) {
  Block a = RandomSparseBlock(5, 5, 0.2, 31);
  Block c = ScalarAdd(a, 1.0f);
  EXPECT_TRUE(c.IsDense());
  EXPECT_NEAR(c.At(0, 0), a.At(0, 0) + 1.0f, 1e-5);
}

TEST(ReductionTest, SumMatchesBothFormats) {
  Block d = RandomDenseBlock(7, 7, 41);
  Block s(d.ToSparse());
  EXPECT_NEAR(Sum(d), Sum(s), 1e-3);
  double manual = 0;
  for (int64_t r = 0; r < 7; ++r) {
    for (int64_t c = 0; c < 7; ++c) manual += d.At(r, c);
  }
  EXPECT_NEAR(Sum(d), manual, 1e-3);
}

TEST(ReductionTest, SumSquaresIsNonNegativeAndExact) {
  Block d = RandomDenseBlock(6, 3, 43);
  double manual = 0;
  for (int64_t r = 0; r < 6; ++r) {
    for (int64_t c = 0; c < 3; ++c) {
      manual += static_cast<double>(d.At(r, c)) * d.At(r, c);
    }
  }
  EXPECT_NEAR(SumSquares(d), manual, 1e-4);
  EXPECT_GE(SumSquares(d), 0);
}

TEST(CompactTest, FromDenseKeepsValuesBothWays) {
  DenseBlock dense(4, 4);
  dense.Set(1, 2, 3.0f);
  Block sparse_out = CompactFromDense(dense, 0.5);
  EXPECT_TRUE(sparse_out.IsSparse());
  EXPECT_FLOAT_EQ(sparse_out.At(1, 2), 3.0f);

  for (int64_t r = 0; r < 4; ++r) {
    for (int64_t c = 0; c < 4; ++c) dense.Set(r, c, 1.0f);
  }
  Block dense_out = CompactFromDense(dense, 0.5);
  EXPECT_TRUE(dense_out.IsDense());
}

TEST(ApproxEqualTest, DetectsDifferences) {
  Block a = RandomDenseBlock(3, 3, 50);
  Block b = a;
  EXPECT_TRUE(ApproxEqual(a, b, 0));
  b.dense().Set(2, 2, b.dense().At(2, 2) + 1.0f);
  EXPECT_FALSE(ApproxEqual(a, b, 0.5));
  EXPECT_TRUE(ApproxEqual(a, b, 1.5));
}

TEST(ApproxEqualTest, ShapeMismatchIsNotEqual) {
  EXPECT_FALSE(ApproxEqual(RandomDenseBlock(2, 3, 1),
                           RandomDenseBlock(3, 2, 1), 100));
}

// ---- algebraic property sweep -------------------------------------------

class AlgebraPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AlgebraPropertyTest, MultiplyTransposeIdentity) {
  // (A·B)^T == B^T · A^T
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Block a = MakeOperand(seed % 2 == 0, 6, 8, seed);
  Block b = MakeOperand(seed % 3 == 0, 8, 5, seed + 100);
  auto ab = Multiply(a, b);
  ASSERT_TRUE(ab.ok());
  auto btat = Multiply(b.Transposed(), a.Transposed());
  ASSERT_TRUE(btat.ok());
  EXPECT_TRUE(ApproxEqual(ab->Transposed(), *btat, 1e-3));
}

TEST_P(AlgebraPropertyTest, DistributiveLaw) {
  // A·(B + C) == A·B + A·C
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Block a = MakeOperand(seed % 2 == 1, 5, 6, seed);
  Block b = MakeOperand(false, 6, 4, seed + 1);
  Block c = MakeOperand(true, 6, 4, seed + 2);
  auto bc = Add(b, c);
  ASSERT_TRUE(bc.ok());
  auto lhs = Multiply(a, *bc);
  auto ab = Multiply(a, b);
  auto ac = Multiply(a, c);
  ASSERT_TRUE(lhs.ok() && ab.ok() && ac.ok());
  auto rhs = Add(*ab, *ac);
  ASSERT_TRUE(rhs.ok());
  EXPECT_TRUE(ApproxEqual(*lhs, *rhs, 1e-2));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgebraPropertyTest,
                         ::testing::Range(1, 11));

// ---- ApproxEqual across representations ---------------------------------
// The rewrite walks stored structures directly (two-pointer union for
// sparse/sparse, pointer-advance for sparse/dense) instead of calling At()
// per element; these pin down equal behavior across every pairing.

TEST(ApproxEqualRepresentationTest, AllPairingsAgreeOnEquality) {
  const Block sp = RandomSparseBlock(40, 30, 0.15, 77);
  const Block dn(sp.ToDense());
  EXPECT_TRUE(ApproxEqual(sp, sp, 0));
  EXPECT_TRUE(ApproxEqual(sp, dn, 0));
  EXPECT_TRUE(ApproxEqual(dn, sp, 0));
  EXPECT_TRUE(ApproxEqual(dn, dn, 0));
}

TEST(ApproxEqualRepresentationTest, DetectsDifferenceInEveryPairing) {
  const Block sp = RandomSparseBlock(40, 30, 0.15, 78);
  DenseBlock bumped = sp.ToDense();
  bumped.Set(39, 29, bumped.At(39, 29) + 1.0f);  // outside typical pattern
  const Block dn(std::move(bumped));
  EXPECT_FALSE(ApproxEqual(sp, dn, 0.5));
  EXPECT_FALSE(ApproxEqual(dn, sp, 0.5));
  EXPECT_TRUE(ApproxEqual(sp, dn, 1.5));
}

TEST(ApproxEqualRepresentationTest, DisjointSparsePatternsCompareByValue) {
  // Entries present in only one operand must compare against zero.
  CscBuilder ba(5, 5), bb(5, 5);
  ba.Add(1, 1, 0.5f);
  bb.Add(3, 3, 0.5f);
  const Block a(ba.Build());
  const Block b(bb.Build());
  EXPECT_FALSE(ApproxEqual(a, b, 0.4));
  EXPECT_TRUE(ApproxEqual(a, b, 0.6));
}

TEST(ApproxEqualRepresentationTest, ExplicitZerosEqualAbsentEntries) {
  CscBuilder ba(4, 4);
  ba.Add(2, 2, 0.0f);  // explicitly stored zero
  const Block a(ba.Build());
  const Block empty(CscBuilder(4, 4).Build());
  EXPECT_TRUE(ApproxEqual(a, empty, 0));
  EXPECT_TRUE(ApproxEqual(empty, a, 0));
}

// ---- SumBlocks sparse aggregation ---------------------------------------

TEST(SumBlocksTest, ManySparsePartialsMatchPairwiseMergesExactly) {
  // The >2-sparse scatter path must be FP-identical to the pairwise union
  // merges it replaced (inputs scattered in order per column == pairwise
  // left-fold addition order).
  std::vector<Block> partials;
  for (uint64_t s = 0; s < 5; ++s) {
    partials.push_back(RandomSparseBlock(50, 40, 0.1, 200 + s));
  }
  std::vector<const Block*> ptrs;
  for (const Block& b : partials) ptrs.push_back(&b);

  auto got = SumBlocks(ptrs, /*density_threshold=*/0.9);
  ASSERT_TRUE(got.ok());

  Block want = partials[0];
  for (size_t i = 1; i < partials.size(); ++i) {
    auto sum = Add(want, partials[i]);
    ASSERT_TRUE(sum.ok());
    want = std::move(*sum);
  }
  const DenseBlock gd = got->ToDense();
  const DenseBlock wd = want.ToDense();
  for (int64_t c = 0; c < wd.cols(); ++c) {
    for (int64_t r = 0; r < wd.rows(); ++r) {
      ASSERT_EQ(gd.At(r, c), wd.At(r, c)) << "(" << r << ", " << c << ")";
    }
  }
}

TEST(SumBlocksTest, CancellationThroughZeroLeavesNoDuplicates) {
  // +1, -1, +2 at one coordinate drives the workspace through zero; the
  // occupancy list then holds the row twice and must dedup on emit.
  CscBuilder b1(3, 3), b2(3, 3), b3(3, 3);
  b1.Add(1, 1, 1.0f);
  b2.Add(1, 1, -1.0f);
  b3.Add(1, 1, 2.0f);
  b3.Add(0, 2, 5.0f);
  const Block p1(b1.Build()), p2(b2.Build()), p3(b3.Build());
  auto got = SumBlocks({&p1, &p2, &p3}, 0.9);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->IsSparse());
  EXPECT_EQ(got->sparse().nnz(), 2);
  EXPECT_EQ(got->At(1, 1), 2.0f);
  EXPECT_EQ(got->At(0, 2), 5.0f);
}

TEST(SumBlocksTest, ExactCancellationYieldsEmptyResult) {
  CscBuilder b1(3, 3), b2(3, 3), b3(3, 3);
  b1.Add(2, 0, 4.0f);
  b2.Add(2, 0, -4.0f);
  b3.Add(1, 1, 0.0f);  // explicit zero never emitted
  const Block p1(b1.Build()), p2(b2.Build()), p3(b3.Build());
  auto got = SumBlocks({&p1, &p2, &p3}, 0.9);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->IsSparse());
  EXPECT_EQ(got->sparse().nnz(), 0);
}

TEST(SumBlocksTest, ShapeMismatchRejected) {
  const Block p1 = RandomSparseBlock(4, 4, 0.2, 1);
  const Block p2 = RandomSparseBlock(4, 4, 0.2, 2);
  const Block p3 = RandomSparseBlock(5, 4, 0.2, 3);
  EXPECT_FALSE(SumBlocks({&p1, &p2, &p3}, 0.5).ok());
}

TEST(SumBlocksTest, MixedInputsAccumulateDensely) {
  const Block sp = RandomSparseBlock(10, 10, 0.2, 4);
  const Block dn = RandomDenseBlock(10, 10, 5);
  auto got = SumBlocks({&sp, &dn}, 0.05);
  ASSERT_TRUE(got.ok());
  auto want = Add(sp, dn);
  ASSERT_TRUE(want.ok());
  EXPECT_TRUE(ApproxEqual(*got, *want, 0));
}

}  // namespace
}  // namespace dmac
