#include "matrix/mem_tracker.h"

#include <gtest/gtest.h>

#include "matrix/block.h"

namespace dmac {
namespace {

TEST(MemTrackerTest, AllocateAndReleaseBalance) {
  MemTracker& t = MemTracker::Global();
  const int64_t before = t.current_bytes();
  t.Allocate(1000);
  EXPECT_EQ(t.current_bytes(), before + 1000);
  t.Release(1000);
  EXPECT_EQ(t.current_bytes(), before);
}

TEST(MemTrackerTest, PeakTracksHighWater) {
  MemTracker& t = MemTracker::Global();
  t.ResetPeak();
  const int64_t base = t.peak_bytes();
  t.Allocate(5000);
  t.Release(5000);
  EXPECT_GE(t.peak_bytes(), base + 5000);
  t.ResetPeak();
  EXPECT_LT(t.peak_bytes(), base + 5000);
}

TEST(MemTrackerTest, DenseBlockLifetimeIsTracked) {
  MemTracker& t = MemTracker::Global();
  const int64_t before = t.current_bytes();
  {
    DenseBlock b(100, 100);
    EXPECT_EQ(t.current_bytes(), before + 4 * 100 * 100);
  }
  EXPECT_EQ(t.current_bytes(), before);
}

TEST(MemTrackerTest, CscBlockLifetimeIsTracked) {
  MemTracker& t = MemTracker::Global();
  const int64_t before = t.current_bytes();
  {
    CscBuilder builder(10, 10);
    for (int i = 0; i < 10; ++i) builder.Add(i, i, 1.0f);
    CscBlock b = builder.Build();
    EXPECT_EQ(t.current_bytes(), before + b.MemoryBytes());
  }
  EXPECT_EQ(t.current_bytes(), before);
}

TEST(MemTrackerTest, CopiesCountTwice) {
  MemTracker& t = MemTracker::Global();
  const int64_t before = t.current_bytes();
  DenseBlock a(50, 50);
  DenseBlock b = a;
  EXPECT_EQ(t.current_bytes(), before + 2 * 4 * 50 * 50);
}

TEST(MemTrackerTest, MovesCountOnce) {
  MemTracker& t = MemTracker::Global();
  const int64_t before = t.current_bytes();
  DenseBlock a(50, 50);
  DenseBlock b = std::move(a);
  EXPECT_EQ(t.current_bytes(), before + 4 * 50 * 50);
}

}  // namespace
}  // namespace dmac
