// Differential and property tests for the packed/tiled kernel layer
// (src/matrix/kernels.h) against the seed's reference loops
// (kernel_reference.h), across representations, densities, transpose
// flags, and awkward shapes.
#include "matrix/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "matrix/block_ops.h"
#include "kernel_reference.h"

namespace dmac {
namespace {

// Operand flavors: one dense, two sparse densities, and all-zero (the
// column-skip prefilter's home turf).
enum class Flavor { kDense, kSparse30, kSparse5, kZero };

const Flavor kFlavors[] = {Flavor::kDense, Flavor::kSparse30,
                           Flavor::kSparse5, Flavor::kZero};

Block MakeOperand(Flavor f, int64_t rows, int64_t cols, uint64_t seed) {
  switch (f) {
    case Flavor::kDense:
      return RandomDenseBlock(rows, cols, seed);
    case Flavor::kSparse30:
      return RandomSparseBlock(rows, cols, 0.3, seed);
    case Flavor::kSparse5:
      return RandomSparseBlock(rows, cols, 0.05, seed);
    case Flavor::kZero:
      return RandomSparseBlock(rows, cols, 0.0, seed);
  }
  return RandomDenseBlock(rows, cols, seed);
}

const char* FlavorName(Flavor f) {
  switch (f) {
    case Flavor::kDense:
      return "dense";
    case Flavor::kSparse30:
      return "sparse30";
    case Flavor::kSparse5:
      return "sparse5";
    case Flavor::kZero:
      return "zero";
  }
  return "?";
}

/// |got - want| <= tol * (1 + |want|) element-wise; the blocked kernel's
/// k-split accumulation order legitimately differs from the reference.
void ExpectClose(const DenseBlock& got, const DenseBlock& want,
                 const std::string& what, double tol = 2e-3) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (int64_t c = 0; c < got.cols(); ++c) {
    for (int64_t r = 0; r < got.rows(); ++r) {
      const double g = got.At(r, c);
      const double w = want.At(r, c);
      ASSERT_LE(std::abs(g - w), tol * (1.0 + std::abs(w)))
          << what << " at (" << r << ", " << c << "): " << g << " vs " << w;
    }
  }
}

void ExpectBitIdentical(const DenseBlock& got, const DenseBlock& want,
                        const std::string& what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (int64_t c = 0; c < got.cols(); ++c) {
    for (int64_t r = 0; r < got.rows(); ++r) {
      ASSERT_EQ(got.At(r, c), want.At(r, c))
          << what << " at (" << r << ", " << c << ")";
    }
  }
}

struct Dims {
  int64_t m, k, n;
};

// Degenerate vectors, odd non-tile-multiples, and a shape crossing every
// cache-block boundary (m > kGemmMc, k > kGemmKc, n > kGemmNr panels).
const Dims kShapes[] = {
    {1, 17, 5}, {13, 1, 9}, {7, 9, 1}, {3, 3, 3},
    {33, 29, 31}, {130, 259, 63},
};

// ---- differential: every flavor x flag combo vs the seed loops ----------

TEST(KernelDifferentialTest, AllFlavorsFlagsAndShapesMatchReference) {
  for (const Dims& d : kShapes) {
    for (Flavor fa : kFlavors) {
      for (Flavor fb : kFlavors) {
        for (int ta = 0; ta <= 1; ++ta) {
          for (int tb = 0; tb <= 1; ++tb) {
            // Operands are generated in their *stored* shape.
            const int64_t a_rows = ta ? d.k : d.m;
            const int64_t a_cols = ta ? d.m : d.k;
            const int64_t b_rows = tb ? d.n : d.k;
            const int64_t b_cols = tb ? d.k : d.n;
            const Block a = MakeOperand(fa, a_rows, a_cols, 7 * d.m + ta);
            const Block b = MakeOperand(fb, b_rows, b_cols, 11 * d.n + tb);
            const std::string what =
                std::string(FlavorName(fa)) + "x" + FlavorName(fb) + " " +
                std::to_string(d.m) + "x" + std::to_string(d.k) + "x" +
                std::to_string(d.n) + " ta=" + std::to_string(ta) +
                " tb=" + std::to_string(tb);

            DenseBlock acc(d.m, d.n);
            ASSERT_TRUE(
                MultiplyAccumulate(a, b, ta != 0, tb != 0, &acc).ok())
                << what;

            // Reference: materialize the transposes, run the seed loop for
            // this representation pair.
            const Block ea =
                ta ? Block(testref::DenseTranspose(a)) : Block(a.ToDense());
            const Block eb =
                tb ? Block(testref::DenseTranspose(b)) : Block(b.ToDense());
            DenseBlock ref(d.m, d.n);
            testref::GemmDenseDense(ea.dense(), eb.dense(), &ref);
            ExpectClose(acc, ref, what);

            // And the wide-accumulation oracle, straight off the stored
            // operands (element-wise At() makes it O(m·n·k·log nnz); skip
            // the largest shape to keep the sweep fast).
            if (d.m * d.k * d.n <= 33 * 29 * 31) {
              ExpectClose(acc, testref::WideMultiply(a, b, ta != 0, tb != 0),
                          what + " (wide)");
            }
          }
        }
      }
    }
  }
}

// The untransposed sparse-touching paths are the seed loops verbatim;
// their results must be bit-identical, not merely close.
TEST(KernelDifferentialTest, UntransposedSparsePathsAreBitIdentical) {
  const Block sa = RandomSparseBlock(37, 29, 0.2, 1);
  const Block sb = RandomSparseBlock(29, 23, 0.25, 2);
  const Block da = RandomDenseBlock(37, 29, 3);
  const Block db = RandomDenseBlock(29, 23, 4);

  {
    DenseBlock acc(37, 23), ref(37, 23);
    ASSERT_TRUE(MultiplyAccumulate(sa, db, false, false, &acc).ok());
    testref::GemmSparseDense(sa.sparse(), db.dense(), &ref);
    ExpectBitIdentical(acc, ref, "sparse x dense");
  }
  {
    DenseBlock acc(37, 23), ref(37, 23);
    ASSERT_TRUE(MultiplyAccumulate(da, sb, false, false, &acc).ok());
    testref::GemmDenseSparse(da.dense(), sb.sparse(), &ref);
    ExpectBitIdentical(acc, ref, "dense x sparse");
  }
  {
    DenseBlock acc(37, 23), ref(37, 23);
    ASSERT_TRUE(MultiplyAccumulate(sa, sb, false, false, &acc).ok());
    testref::GemmSparseSparse(sa.sparse(), sb.sparse(), &ref);
    ExpectBitIdentical(acc, ref, "sparse x sparse");
  }
}

// ---- dense flag combinations are bit-identical ---------------------------
// Packing absorbs the transposes before the micro-kernel runs, so the same
// logical product computed through any flag combination must agree to the
// last bit (the transpose-fusion pass depends on this: fused and unfused
// plans produce identical numerics).

TEST(KernelPropertyTest, DenseFlagCombinationsAreBitIdentical) {
  const int64_t m = 45, k = 75, n = 19;
  const Block a = RandomDenseBlock(m, k, 21);
  const Block b = RandomDenseBlock(k, n, 22);
  const Block at(testref::DenseTranspose(a));  // stored k x m
  const Block bt(testref::DenseTranspose(b));  // stored n x k

  DenseBlock base(m, n);
  ASSERT_TRUE(MultiplyAccumulate(a, b, false, false, &base).ok());

  const struct {
    const Block* a;
    const Block* b;
    bool ta, tb;
    const char* what;
  } combos[] = {
      {&at, &b, true, false, "Ta"},
      {&a, &bt, false, true, "Tb"},
      {&at, &bt, true, true, "TaTb"},
  };
  for (const auto& c : combos) {
    DenseBlock acc(m, n);
    ASSERT_TRUE(MultiplyAccumulate(*c.a, *c.b, c.ta, c.tb, &acc).ok());
    ExpectBitIdentical(acc, base, c.what);
  }
}

// ---- scratch: pool exhaustion propagates, never aborts -------------------

TEST(KernelScratchTest, ExhaustedAllocatorSurfacesAsStatus) {
  GemmScratch scratch(
      [](int64_t, int64_t) -> Result<DenseBlock> {
        return Status::ResourceExhausted("budget");
      },
      [](DenseBlock) {});
  const Block a = RandomDenseBlock(20, 20, 5);
  const Block b = RandomDenseBlock(20, 20, 6);
  DenseBlock acc(20, 20);
  const Status st =
      MultiplyAccumulate(a, b, false, false, &acc, &scratch, nullptr);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST(KernelScratchTest, PooledBuffersAreReturnedOnDestruction) {
  int64_t outstanding = 0;
  {
    GemmScratch scratch(
        [&outstanding](int64_t rows, int64_t cols) -> Result<DenseBlock> {
          ++outstanding;
          return DenseBlock(rows, cols);
        },
        [&outstanding](DenseBlock) { --outstanding; });
    const Block a = RandomDenseBlock(30, 40, 7);
    const Block b = RandomDenseBlock(40, 25, 8);
    DenseBlock acc(30, 25);
    ASSERT_TRUE(
        MultiplyAccumulate(a, b, false, false, &acc, &scratch, nullptr).ok());
    EXPECT_GT(outstanding, 0);
  }
  EXPECT_EQ(outstanding, 0);
}

TEST(KernelScratchTest, MoveTransfersOwnershipOfPooledBuffers) {
  int64_t outstanding = 0;
  {
    GemmScratch a(
        [&outstanding](int64_t rows, int64_t cols) -> Result<DenseBlock> {
          ++outstanding;
          return DenseBlock(rows, cols);
        },
        [&outstanding](DenseBlock) { --outstanding; });
    ASSERT_TRUE(a.PanelA(64).ok());
    GemmScratch b = std::move(a);
    // `a` must not double-release what `b` now owns.
  }
  EXPECT_EQ(outstanding, 0);
}

// ---- stats ---------------------------------------------------------------

TEST(KernelStatsTest, DenseFlopsAreTwoMNK) {
  const int64_t m = 30, k = 50, n = 20;
  const Block a = RandomDenseBlock(m, k, 9);
  const Block b = RandomDenseBlock(k, n, 10);
  DenseBlock acc(m, n);
  GemmStats stats;
  ASSERT_TRUE(
      MultiplyAccumulate(a, b, false, false, &acc, nullptr, &stats).ok());
  EXPECT_DOUBLE_EQ(stats.flops, 2.0 * m * n * k);
  EXPECT_GE(stats.pack_seconds, 0.0);
}

TEST(KernelStatsTest, MergeAccumulates) {
  GemmStats a{100.0, 0.25};
  const GemmStats b{50.0, 0.5};
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.flops, 150.0);
  EXPECT_DOUBLE_EQ(a.pack_seconds, 0.75);
}

// ---- vector primitives ---------------------------------------------------

TEST(VecPrimitiveTest, SumAndSumSquaresMatchSequentialAccumulation) {
  std::vector<Scalar> v;
  for (int i = 0; i < 1003; ++i) {
    v.push_back(static_cast<Scalar>(std::sin(i * 0.37) * 2));
  }
  double sum = 0, sq = 0;
  for (Scalar x : v) {
    sum += x;
    sq += static_cast<double>(x) * x;
  }
  EXPECT_NEAR(VecSum(v.data(), static_cast<int64_t>(v.size())), sum, 1e-9);
  EXPECT_NEAR(VecSumSquares(v.data(), static_cast<int64_t>(v.size())), sq,
              1e-9);
}

TEST(VecPrimitiveTest, ShortAndEmptyInputs) {
  const Scalar v[3] = {1.5f, -2.5f, 4.0f};
  EXPECT_DOUBLE_EQ(VecSum(v, 0), 0.0);
  EXPECT_DOUBLE_EQ(VecSum(v, 3), 3.0);
  EXPECT_DOUBLE_EQ(VecSumSquares(v, 3), 1.5 * 1.5 + 2.5 * 2.5 + 16.0);
  EXPECT_EQ(VecColSum(v, 3), 3.0f);
}

}  // namespace
}  // namespace dmac
