// Threaded dense GEMM tests (GemmParallel in matrix/kernels.h): the
// tile-task decomposition must produce bit-identical results to the serial
// macro-kernel — same packed panels, same per-element accumulation order —
// across transpose flags and awkward shapes, honor the small-product serial
// cutoff, and abandon cooperatively at tile-task boundaries. matrix_test
// runs under TSan in CI, so these also exercise the pack/compute
// synchronization for data races.
#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "common/thread_pool.h"
#include "matrix/block.h"
#include "matrix/block_ops.h"
#include "matrix/kernels.h"

namespace dmac {
namespace {

/// Effective-shape operand stored transposed when the flag is set, so both
/// flag settings multiply the same logical matrices.
Block Operand(int64_t rows, int64_t cols, bool trans, uint64_t seed) {
  return trans ? RandomDenseBlock(cols, rows, seed)
               : RandomDenseBlock(rows, cols, seed);
}

void ExpectBitIdentical(const DenseBlock& got, const DenseBlock& want,
                        const std::string& what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (int64_t c = 0; c < got.cols(); ++c) {
    for (int64_t r = 0; r < got.rows(); ++r) {
      ASSERT_EQ(got.At(r, c), want.At(r, c))
          << what << " at (" << r << ", " << c << ")";
    }
  }
}

/// Runs op(A)·op(B) serially and through GemmParallel and asserts the two
/// accumulators match bit for bit.
void CheckThreadedMatchesSerial(int64_t m, int64_t n, int64_t k, bool ta,
                                bool tb, int workers) {
  Block a = Operand(m, k, ta, 7);
  Block b = Operand(k, n, tb, 8);
  GemmScratch scratch;

  DenseBlock serial(m, n);
  ASSERT_TRUE(MultiplyAccumulate(a, b, ta, tb, &serial, &scratch).ok());

  ThreadPool pool(static_cast<size_t>(workers - 1));
  GemmParallel par;
  par.pool = &pool;
  par.max_workers = workers;
  ASSERT_TRUE(par.Enabled());

  DenseBlock threaded(m, n);
  GemmStats stats;
  ASSERT_TRUE(
      MultiplyAccumulate(a, b, ta, tb, &threaded, &scratch, &stats, &par)
          .ok());

  const std::string what = std::string("m=") + std::to_string(m) +
                           " n=" + std::to_string(n) +
                           " k=" + std::to_string(k) + " " +
                           (ta ? "t" : "n") + (tb ? "t" : "n") + " workers=" +
                           std::to_string(workers);
  // The product is above the parallel cutoff, so tile tasks must have run.
  EXPECT_GT(stats.tasks, 0) << what;
  ExpectBitIdentical(threaded, serial, what);
}

TEST(GemmParallelTest, AllTransposeFlagsBitIdenticalToSerial) {
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      CheckThreadedMatchesSerial(160, 160, 160, ta, tb, /*workers=*/3);
    }
  }
}

TEST(GemmParallelTest, AwkwardShapesBitIdenticalToSerial) {
  // Non-multiples of Mr/Nr/Kc/Mc on every axis: edge tiles, padded
  // micro-panels, and a k above one Kc slice.
  CheckThreadedMatchesSerial(131, 97, 311, false, false, 3);
  CheckThreadedMatchesSerial(97, 131, 311, true, true, 2);
  // Wide-and-short / tall-and-thin splits that leave some workers without
  // a full column chunk.
  CheckThreadedMatchesSerial(64, 2048, 64, false, false, 4);
  CheckThreadedMatchesSerial(2048, 64, 64, false, false, 4);
}

TEST(GemmParallelTest, SmallProductTakesSerialPathUnderParallelRequest) {
  // 32^3 is far below kGemmParallelMinFlops: the dispatch must not fan out
  // (tasks stays 0) and the result must still be correct.
  Block a = RandomDenseBlock(32, 32, 1);
  Block b = RandomDenseBlock(32, 32, 2);
  GemmScratch scratch;

  DenseBlock serial(32, 32);
  ASSERT_TRUE(MultiplyAccumulate(a, b, false, false, &serial, &scratch).ok());

  ThreadPool pool(2);
  GemmParallel par;
  par.pool = &pool;
  par.max_workers = 3;

  DenseBlock threaded(32, 32);
  GemmStats stats;
  ASSERT_TRUE(MultiplyAccumulate(a, b, false, false, &threaded, &scratch,
                                 &stats, &par)
                  .ok());
  EXPECT_EQ(stats.tasks, 0);
  ExpectBitIdentical(threaded, serial, "below-cutoff product");
}

TEST(GemmParallelTest, DisabledParallelStructBehavesSerially) {
  Block a = RandomDenseBlock(160, 160, 3);
  Block b = RandomDenseBlock(160, 160, 4);
  GemmScratch scratch;

  GemmParallel par;  // no pool: Enabled() is false
  EXPECT_FALSE(par.Enabled());

  DenseBlock acc(160, 160);
  GemmStats stats;
  ASSERT_TRUE(
      MultiplyAccumulate(a, b, false, false, &acc, &scratch, &stats, &par)
          .ok());
  EXPECT_EQ(stats.tasks, 0);
}

TEST(GemmParallelTest, PreFiredAbandonReturnsCancelled) {
  Block a = RandomDenseBlock(256, 256, 5);
  Block b = RandomDenseBlock(256, 256, 6);
  GemmScratch scratch;

  ThreadPool pool(2);
  std::atomic<bool> abandon{true};
  GemmParallel par;
  par.pool = &pool;
  par.max_workers = 3;
  par.abandon = &abandon;

  DenseBlock acc(256, 256);
  Status st = MultiplyAccumulate(a, b, false, false, &acc, &scratch,
                                 /*stats=*/nullptr, &par);
  EXPECT_EQ(st.code(), StatusCode::kCancelled) << st.ToString();
}

TEST(GemmParallelTest, WrapTaskSeesEveryTileTask) {
  Block a = RandomDenseBlock(192, 192, 9);
  Block b = RandomDenseBlock(192, 192, 10);
  GemmScratch scratch;

  ThreadPool pool(2);
  std::atomic<int64_t> wrapped{0};
  GemmParallel par;
  par.pool = &pool;
  par.max_workers = 3;
  par.wrap_task = [&wrapped](const std::function<void()>& body) {
    ++wrapped;
    body();
  };

  DenseBlock acc(192, 192);
  GemmStats stats;
  ASSERT_TRUE(
      MultiplyAccumulate(a, b, false, false, &acc, &scratch, &stats, &par)
          .ok());
  EXPECT_GT(stats.tasks, 0);
  EXPECT_EQ(static_cast<double>(wrapped.load()), stats.tasks);
}

}  // namespace
}  // namespace dmac
