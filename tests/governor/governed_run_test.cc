// End-to-end governed execution through RunProgram: budgets force spill
// without changing results, impossible budgets fail cleanly with no leaked
// spill files, recovery composes with spilling (regression for the
// broadcast-replica-repair bug), and a fired token preempts the fault
// layer's retry loop without being counted as a retry.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "../fault/fault_test_util.h"
#include "common/status.h"
#include "fault/fault_spec.h"
#include "governor/context.h"
#include "obs/metrics.h"
#include "runtime/buffer_pool.h"

namespace dmac {
namespace {

RunConfig BaseConfig() {
  RunConfig config;
  config.num_workers = 3;
  config.threads_per_worker = 2;
  config.seed = 42;
  return config;
}

/// Attaches a fresh budget + spill store to `config` and returns them.
GovernorContext Governed(RunConfig* config, int64_t limit_bytes) {
  GovernorContext gov;
  gov.budget = std::make_shared<MemoryBudget>(limit_bytes);
  auto spill = SpillStore::Create();
  EXPECT_TRUE(spill.ok()) << spill.status();
  gov.spill = *spill;
  config->governor = gov;
  return gov;
}

int AnyComputeStepId(const Program& program, const RunConfig& config) {
  auto plan = PlanProgram(program, config);
  EXPECT_TRUE(plan.ok()) << plan.status();
  for (const PlanStep& step : plan->steps) {
    if (step.kind == StepKind::kCompute) return step.id;
  }
  ADD_FAILURE() << "plan has no compute step";
  return -1;
}

TEST(GovernedRunTest, TightBudgetSpillsButResultsAreBitIdentical) {
  const FaultAppCase app = MakeSmallGnmf();
  const auto clean = RunProgram(app.program, app.MakeBindings(),
                                BaseConfig());
  ASSERT_TRUE(clean.ok()) << clean.status();

  // Pass 1: unlimited budget, purely to observe the peak resident set.
  RunConfig probe = BaseConfig();
  GovernorContext probe_gov = Governed(&probe, 0);
  ASSERT_TRUE(RunProgram(app.program, app.MakeBindings(), probe).ok());
  const int64_t peak = probe_gov.budget->peak_bytes();
  ASSERT_GT(peak, 0);
  EXPECT_EQ(probe_gov.spill->live_files(), 0);

  // Pass 2: squeeze to 60% of the peak — the run must spill to fit, yet
  // produce exactly the same bits.
  RunConfig tight = BaseConfig();
  GovernorContext gov = Governed(&tight, peak * 6 / 10);
  const auto governed = RunProgram(app.program, app.MakeBindings(), tight);
  ASSERT_TRUE(governed.ok()) << governed.status();
  EXPECT_GT(gov.spill->spilled_bytes(), 0);
  // Spilled blocks are either restored before their next read or Remove()d
  // when their matrix dies cold — never left behind.
  EXPECT_LE(gov.spill->restored_bytes(), gov.spill->spilled_bytes());
  EXPECT_EQ(gov.spill->live_files(), 0);
  ExpectBitIdentical(clean->result, governed->result, "tight budget");
}

TEST(GovernedRunTest, ImpossibleBudgetFailsCleanWithNoLeaks) {
  const FaultAppCase app = MakeSmallGnmf();
  RunConfig config = BaseConfig();
  GovernorContext gov = Governed(&config, 100);  // < one block

  const int64_t before = BufferPool::GlobalOutstandingBlocks();
  const auto outcome = RunProgram(app.program, app.MakeBindings(), config);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kResourceExhausted)
      << outcome.status();
  // Clean failure: no partial result, no leaked spill files or buffers,
  // and every budget charge returned.
  EXPECT_EQ(gov.spill->live_files(), 0);
  EXPECT_EQ(BufferPool::GlobalOutstandingBlocks(), before);
  EXPECT_EQ(gov.budget->used_bytes(), 0);
}

// Regression: a spilled broadcast replica passes VerifyAt (its spill file
// carries the checksum) but is not resident; replica repair must not copy
// it into the crashed worker's slot as a null block, or the final lineage
// manifest check reports a bogus divergence (surfaced as kInternal by the
// chaos soak under tiny budgets).
TEST(GovernedRunTest, RecoveryComposesWithSpilledBroadcastReplicas) {
  const FaultAppCase app = MakeSmallGnmf();
  const auto clean = RunProgram(app.program, app.MakeBindings(),
                                BaseConfig());
  ASSERT_TRUE(clean.ok()) << clean.status();

  auto spec =
      LoadFaultSpecFile(DMAC_SOURCE_DIR "/scripts/faults/smoke.spec");
  ASSERT_TRUE(spec.ok()) << spec.status();

  for (const uint64_t fault_seed : {1u, 2u, 3u, 4u}) {
    RunConfig config = BaseConfig();
    config.fault = *spec;
    config.fault.seed = fault_seed;
    GovernorContext gov = Governed(&config, 5424);  // the soak repro budget
    const auto outcome = RunProgram(app.program, app.MakeBindings(), config);
    if (outcome.ok()) {
      ExpectBitIdentical(clean->result, outcome->result,
                         "faulted+spilled seed " +
                             std::to_string(fault_seed));
    } else {
      // Only clean governance/fault terminal codes are acceptable —
      // never kInternal.
      const StatusCode code = outcome.status().code();
      EXPECT_TRUE(code == StatusCode::kResourceExhausted ||
                  code == StatusCode::kUnavailable ||
                  code == StatusCode::kDataLoss)
          << outcome.status();
    }
    EXPECT_EQ(gov.spill->live_files(), 0);
  }
}

class CancelRetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricRegistry::Global().Reset();
    MetricRegistry::Global().SetEnabled(true);
  }
  void TearDown() override {
    MetricRegistry::Global().SetEnabled(false);
    MetricRegistry::Global().Reset();
  }

  double Retries() {
    return MetricRegistry::Global().counter(kMetricFaultRetries)->value();
  }
};

TEST_F(CancelRetryTest, PermanentFaultRetriesAreCounted) {
  const FaultAppCase app = MakeSmallGnmf();
  RunConfig config = BaseConfig();
  config.fault.enabled = true;
  config.fault.max_retries = 2;
  config.fault.permanent_fail_step = AnyComputeStepId(app.program, config);

  const auto outcome = RunProgram(app.program, app.MakeBindings(), config);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kUnavailable)
      << outcome.status();
  EXPECT_EQ(Retries(), 2.0);
}

TEST_F(CancelRetryTest, ExpiredDeadlinePreemptsTheRetryPath) {
  // Same permanent fault, but the token fired before the failing step: the
  // query must exit with the governance code and the fault layer must not
  // count a single retry (mirrors ExecStats.retries, which is incremented
  // in lockstep with the metric).
  const FaultAppCase app = MakeSmallGnmf();
  RunConfig config = BaseConfig();
  config.fault.enabled = true;
  config.fault.max_retries = 5;
  config.fault.permanent_fail_step = AnyComputeStepId(app.program, config);
  config.governor.token = CancelToken::WithDeadline(1e-9);

  const auto outcome = RunProgram(app.program, app.MakeBindings(), config);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kDeadlineExceeded)
      << outcome.status();
  EXPECT_EQ(Retries(), 0.0);
}

TEST_F(CancelRetryTest, CancelDuringRetryLoopExitsPromptly) {
  // With an effectively unbounded retry budget the permanent fault would
  // spin in retry/backoff/recover for a very long time; firing the token
  // mid-loop must exit within one attempt, not run the budget out.
  const FaultAppCase app = MakeSmallGnmf();
  RunConfig config = BaseConfig();
  config.fault.enabled = true;
  config.fault.max_retries = 1000000;
  config.fault.permanent_fail_step = AnyComputeStepId(app.program, config);
  CancelToken token = CancelToken::Cancellable();
  config.governor.token = token;

  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    token.Cancel();
  });
  const auto start = std::chrono::steady_clock::now();
  const auto outcome = RunProgram(app.program, app.MakeBindings(), config);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  canceller.join();

  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kCancelled)
      << outcome.status();
  // Prompt exit: nowhere near the retry budget, and the attempt that
  // observed the cancellation was not counted as a retry.
  EXPECT_LT(Retries(), 1000000.0);
  EXPECT_LT(elapsed, 60.0);
}

}  // namespace
}  // namespace dmac
