// TSan-targeted governance stress (docs/static_analysis.md): a storm of
// concurrent queries against one QuerySession — plain runs, immediate
// deadlines, tight memory budgets that force spilling, and asynchronous
// cancels — with waiters racing the submitters. The sanitizer CI job runs
// this under ThreadSanitizer, which is the real assertion: the admission
// controller, per-query budgets, spill store, buffer pool, and the
// session's own bookkeeping are exercised from many threads at once, so
// any unguarded shared state surfaces as a TSan report. Functionally the
// test checks the governance contract: every query terminates with exactly
// one status from the terminal set, and nothing leaks once the session
// dies.
#include <gtest/gtest.h>

#include <random>
#include <thread>
#include <vector>

#include "../fault/fault_test_util.h"
#include "common/status.h"
#include "governor/query_session.h"
#include "runtime/buffer_pool.h"

namespace dmac {
namespace {

/// Statuses a governed query may legally terminate with (query_session.h).
bool IsTerminalGovernanceStatus(const Status& s) {
  switch (s.code()) {
    case StatusCode::kOk:
    case StatusCode::kCancelled:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
    case StatusCode::kUnavailable:
    case StatusCode::kDataLoss:
      return true;
    default:
      return false;
  }
}

TEST(SessionStressTest, ConcurrentAdmitCancelDeadlineUnderTightBudget) {
  const FaultAppCase app = MakeSmallGnmf();
  const int64_t blocks_before = BufferPool::GlobalOutstandingBlocks();

  RunConfig config;
  config.num_workers = 3;
  config.threads_per_worker = 2;
  config.seed = 42;

  // The flavor schedule is drawn once from a fixed seed so every run (and
  // every TSan interleaving) stresses the same mix of exit paths.
  constexpr int kQueries = 24;
  std::mt19937 rng(42);
  std::vector<int> flavors;
  flavors.reserve(kQueries);
  for (int i = 0; i < kQueries; ++i) {
    flavors.push_back(static_cast<int>(rng() % 4));
  }

  int ok = 0, cancelled = 0, deadline = 0, exhausted = 0;
  {
    QuerySession session({/*max_concurrent=*/2, /*max_queued=*/4, 0},
                         config);
    std::vector<int64_t> ids;
    std::vector<std::thread> cancellers;
    for (int i = 0; i < kQueries; ++i) {
      QueryOptions opts;
      switch (flavors[i]) {
        case 0:  // plain run
          break;
        case 1:  // expires before it can do any work
          opts.deadline_seconds = 1e-9;
          break;
        case 2:  // tight budget: must spill to finish, or fail cleanly
          opts.memory_budget_bytes = 32 << 10;
          break;
        case 3:  // cancelled asynchronously while queued or running
          break;
      }
      const int64_t id = session.Submit(app.program, app.MakeBindings(),
                                        opts);
      ids.push_back(id);
      if (flavors[i] == 3) {
        cancellers.emplace_back([&session, id] { session.Cancel(id); });
      }
    }

    // Waiters race the submissions and each other (Wait is idempotent and
    // any caller may reap the query thread).
    for (int64_t id : ids) {
      QueryOutcome out = session.Wait(id);
      EXPECT_TRUE(IsTerminalGovernanceStatus(out.status))
          << "query " << id << ": " << out.status;
      switch (out.status.code()) {
        case StatusCode::kOk:
          ok++;
          break;
        case StatusCode::kCancelled:
          cancelled++;
          break;
        case StatusCode::kDeadlineExceeded:
          deadline++;
          EXPECT_TRUE(out.run.result.matrices.empty());
          break;
        case StatusCode::kResourceExhausted:
          exhausted++;
          break;
        default:
          break;
      }
    }
    for (auto& t : cancellers) t.join();

    // Second Wait pass: outcomes are stable and re-waitable.
    for (int64_t id : ids) {
      EXPECT_TRUE(IsTerminalGovernanceStatus(session.Wait(id).status));
    }
  }

  // Whatever mix of exits the interleaving produced, at least the plain
  // queries (which nothing kills except queue overflow) account for some
  // terminal outcome, and no kernel buffer leaked from any exit path.
  EXPECT_EQ(ok + cancelled + deadline + exhausted, kQueries);
  EXPECT_GT(ok + exhausted, 0);
  EXPECT_EQ(BufferPool::GlobalOutstandingBlocks(), blocks_before);
}

}  // namespace
}  // namespace dmac
