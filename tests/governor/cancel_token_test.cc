// CancelToken semantics: inert default, manual cancel, deadline expiry,
// sticky reasons, and the raw fired flag used for task abandonment.
#include "governor/cancel_token.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/status.h"

namespace dmac {
namespace {

TEST(CancelTokenTest, DefaultIsInert) {
  CancelToken token;
  EXPECT_FALSE(token.active());
  EXPECT_TRUE(token.Check().ok());
  EXPECT_FALSE(token.Fired());
  EXPECT_EQ(token.fired_flag(), nullptr);
  EXPECT_EQ(token.fired_at_seconds(), 0.0);
  token.Cancel();  // no-op, must not crash
  EXPECT_TRUE(token.Check().ok());
}

TEST(CancelTokenTest, CancellableFiresOnceAndStaysFired) {
  CancelToken token = CancelToken::Cancellable();
  ASSERT_TRUE(token.active());
  EXPECT_TRUE(token.Check().ok());
  EXPECT_EQ(token.fired_at_seconds(), 0.0);

  token.Cancel();
  EXPECT_TRUE(token.Fired());
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);
  // Sticky: polling again returns the same code, and the fired timestamp
  // marks the *first* firing.
  const double fired_at = token.fired_at_seconds();
  EXPECT_GT(fired_at, 0.0);
  token.Cancel();
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);
  EXPECT_EQ(token.fired_at_seconds(), fired_at);
}

TEST(CancelTokenTest, ExpiredDeadlineFiresDeadlineExceeded) {
  // Zero and negative deadlines are already expired at construction.
  EXPECT_EQ(CancelToken::WithDeadline(0).Check().code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(CancelToken::WithDeadline(-1).Check().code(),
            StatusCode::kDeadlineExceeded);
}

TEST(CancelTokenTest, FutureDeadlineDoesNotFireEarly) {
  CancelToken token = CancelToken::WithDeadline(3600);
  EXPECT_TRUE(token.Check().ok());
  EXPECT_FALSE(token.Fired());
}

TEST(CancelTokenTest, ManualCancelBeatsALaterDeadline) {
  CancelToken token = CancelToken::WithDeadline(3600);
  token.Cancel();
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, DeadlineReasonIsStickyAgainstLaterCancel) {
  CancelToken token = CancelToken::WithDeadline(1e-9);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ASSERT_EQ(token.Check().code(), StatusCode::kDeadlineExceeded);
  token.Cancel();  // too late — the first reason wins
  EXPECT_EQ(token.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancelTokenTest, CopiesShareState) {
  CancelToken token = CancelToken::Cancellable();
  CancelToken copy = token;
  copy.Cancel();
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);
  EXPECT_EQ(token.fired_flag(), copy.fired_flag());
}

TEST(CancelTokenTest, FiredFlagIsSetForThreadPoolAbandonment) {
  CancelToken token = CancelToken::Cancellable();
  const std::atomic<bool>* flag = token.fired_flag();
  ASSERT_NE(flag, nullptr);
  EXPECT_FALSE(flag->load());
  token.Cancel();
  EXPECT_TRUE(flag->load());
}

TEST(CancelTokenTest, PollingDetectsDeadlineExpiryAndSetsFlag) {
  CancelToken token = CancelToken::WithDeadline(1e-9);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  // The flag flips on the first Check() that observes expiry.
  EXPECT_EQ(token.Check().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(token.fired_flag()->load());
  EXPECT_GT(token.fired_at_seconds(), 0.0);
}

}  // namespace
}  // namespace dmac
