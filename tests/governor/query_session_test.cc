// QuerySession: the admission-controlled multi-query front end. Covers
// success (bit-identical to a direct run), deadline expiry, mid-flight and
// while-queued cancellation, estimate-based rejection, and resource
// cleanup (no leaked pool buffers).
#include "governor/query_session.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "../fault/fault_test_util.h"
#include "apps/gnmf.h"
#include "common/status.h"
#include "runtime/buffer_pool.h"

namespace dmac {
namespace {

RunConfig BaseConfig() {
  RunConfig config;
  config.num_workers = 3;
  config.threads_per_worker = 2;
  config.seed = 42;
  return config;
}

/// A GNMF case big enough to hold an admission slot for a while.
FaultAppCase MakeLongGnmf() {
  GnmfConfig config{48, 32, 0.25, 4, 40};
  FaultAppCase c{"gnmf-long", BuildGnmfProgram(config), {}};
  c.inputs.emplace_back("V", SyntheticSparse(48, 32, 0.25, kFaultBs, 31));
  return c;
}

TEST(QuerySessionTest, SuccessMatchesADirectRunBitForBit) {
  const FaultAppCase app = MakeSmallGnmf();
  const auto direct = RunProgram(app.program, app.MakeBindings(),
                                 BaseConfig());
  ASSERT_TRUE(direct.ok()) << direct.status();

  QuerySession session({/*max_concurrent=*/2, /*max_queued=*/4, 0},
                       BaseConfig());
  const int64_t id = session.Submit(app.program, app.MakeBindings(), {});
  QueryOutcome outcome = session.Wait(id);
  ASSERT_TRUE(outcome.status.ok()) << outcome.status;
  EXPECT_GT(outcome.footprint_estimate_bytes, 0);
  EXPECT_LT(outcome.cancel_latency_seconds, 0);  // token never fired
  ExpectBitIdentical(direct->result, outcome.run.result, "session gnmf");
}

TEST(QuerySessionTest, WaitIsIdempotentAndUnknownIdsAreInvalid) {
  const FaultAppCase app = MakeSmallGnmf();
  QuerySession session({2, 4, 0}, BaseConfig());
  const int64_t id = session.Submit(app.program, app.MakeBindings(), {});
  EXPECT_TRUE(session.Wait(id).status.ok());
  EXPECT_TRUE(session.Wait(id).status.ok());
  EXPECT_EQ(session.Wait(id + 100).status.code(),
            StatusCode::kInvalidArgument);
}

TEST(QuerySessionTest, TinyDeadlineExpiresWithNoPartialResult) {
  const FaultAppCase app = MakeSmallGnmf();
  QuerySession session({2, 4, 0}, BaseConfig());
  QueryOptions opts;
  opts.deadline_seconds = 1e-9;
  const int64_t id = session.Submit(app.program, app.MakeBindings(), opts);
  QueryOutcome outcome = session.Wait(id);
  EXPECT_EQ(outcome.status.code(), StatusCode::kDeadlineExceeded)
      << outcome.status;
  EXPECT_TRUE(outcome.run.result.matrices.empty());
  EXPECT_GE(outcome.cancel_latency_seconds, 0);
}

TEST(QuerySessionTest, EstimateOverSessionQuotaIsRejected) {
  const FaultAppCase app = MakeSmallGnmf();
  QuerySession session({2, 4, /*total_memory_bytes=*/1}, BaseConfig());
  const int64_t id = session.Submit(app.program, app.MakeBindings(), {});
  QueryOutcome outcome = session.Wait(id);
  EXPECT_EQ(outcome.status.code(), StatusCode::kResourceExhausted)
      << outcome.status;
  EXPECT_GT(outcome.footprint_estimate_bytes, 1);
}

TEST(QuerySessionTest, BudgetTooSmallForAnyStepIsResourceExhausted) {
  const FaultAppCase app = MakeSmallGnmf();
  QuerySession session({2, 4, 0}, BaseConfig());
  QueryOptions opts;
  opts.memory_budget_bytes = 64;  // smaller than a single block
  const int64_t id = session.Submit(app.program, app.MakeBindings(), opts);
  QueryOutcome outcome = session.Wait(id);
  EXPECT_EQ(outcome.status.code(), StatusCode::kResourceExhausted)
      << outcome.status;
}

TEST(QuerySessionTest, CancelWhileQueuedIsPrompt) {
  const FaultAppCase longapp = MakeLongGnmf();
  const FaultAppCase shortapp = MakeSmallGnmf();
  QuerySession session({/*max_concurrent=*/1, /*max_queued=*/4, 0},
                       BaseConfig());

  const int64_t slow = session.Submit(longapp.program,
                                      longapp.MakeBindings(), {});
  // Wait for the slow query to own the only slot, then queue the victim.
  while (session.running() == 0) std::this_thread::yield();
  const int64_t victim = session.Submit(shortapp.program,
                                        shortapp.MakeBindings(), {});
  while (session.queue_depth() == 0 && session.running() == 1) {
    std::this_thread::yield();
  }
  session.Cancel(victim);

  QueryOutcome vo = session.Wait(victim);
  // The victim was cancelled while queued (or, if the slow query finished
  // first, just after admission) — either way it must surface kCancelled
  // and nothing else, unless it managed to finish entirely first.
  EXPECT_TRUE(vo.status.code() == StatusCode::kCancelled || vo.status.ok())
      << vo.status;
  if (!vo.status.ok()) {
    EXPECT_TRUE(vo.run.result.matrices.empty());
    EXPECT_GE(vo.cancel_latency_seconds, 0);
  }
  EXPECT_TRUE(session.Wait(slow).status.ok());
}

TEST(QuerySessionTest, DestructorCancelsInFlightQueries) {
  const FaultAppCase app = MakeLongGnmf();
  const int64_t before = BufferPool::GlobalOutstandingBlocks();
  {
    QuerySession session({2, 4, 0}, BaseConfig());
    session.Submit(app.program, app.MakeBindings(), {});
    session.Submit(app.program, app.MakeBindings(), {});
    // Drop the session without waiting: it must cancel and join cleanly.
  }
  // Nothing may leak from torn-down queries.
  EXPECT_EQ(BufferPool::GlobalOutstandingBlocks(), before);
}

TEST(QuerySessionTest, SubmitRacesSafelyWithImmediateWait) {
  // Regression: Submit used to start the query thread after dropping the
  // session lock, i.e. after the query was already visible in queries_. A
  // waiter that guessed the (dense, monotonically assigned) id could then
  // reach q->thread.joinable()/join() while the std::thread assignment was
  // still in flight — a race TSan flags on the thread object. The thread
  // now starts inside the lock; hammering Wait on the next id while
  // Submit publishes it must be clean and every query must complete.
  const FaultAppCase app = MakeSmallGnmf();
  QuerySession session({/*max_concurrent=*/3, /*max_queued=*/16, 0},
                       BaseConfig());
  constexpr int64_t kQueries = 6;
  std::thread waiter([&session] {
    for (int64_t id = 0; id < kQueries; ++id) {
      QueryOutcome out;
      do {
        out = session.Wait(id);  // spins until Submit publishes the id
      } while (out.status.code() == StatusCode::kInvalidArgument);
      EXPECT_TRUE(out.status.ok()) << out.status;
    }
  });
  for (int64_t i = 0; i < kQueries; ++i) {
    EXPECT_EQ(session.Submit(app.program, app.MakeBindings(), {}), i);
  }
  waiter.join();
}

TEST(QuerySessionTest, ConcurrentQueriesAllSucceedIdentically) {
  const FaultAppCase app = MakeSmallGnmf();
  const auto direct = RunProgram(app.program, app.MakeBindings(),
                                 BaseConfig());
  ASSERT_TRUE(direct.ok()) << direct.status();

  QuerySession session({/*max_concurrent=*/3, /*max_queued=*/8, 0},
                       BaseConfig());
  std::vector<int64_t> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(session.Submit(app.program, app.MakeBindings(), {}));
  }
  for (int64_t id : ids) {
    QueryOutcome outcome = session.Wait(id);
    ASSERT_TRUE(outcome.status.ok()) << outcome.status;
    ExpectBitIdentical(direct->result, outcome.run.result,
                       "concurrent gnmf");
  }
}

}  // namespace
}  // namespace dmac
