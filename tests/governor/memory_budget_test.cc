// MemoryBudget accounting: charge/release, peak tracking, over-budget
// arithmetic, and the whole-budget (oversize block) check.
#include "governor/memory_budget.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace dmac {
namespace {

TEST(MemoryBudgetTest, ChargeAndReleaseTrackUsage) {
  MemoryBudget budget(1000);
  EXPECT_EQ(budget.limit_bytes(), 1000);
  EXPECT_EQ(budget.used_bytes(), 0);

  budget.Charge(300);
  budget.Charge(200);
  EXPECT_EQ(budget.used_bytes(), 500);
  budget.Release(300);
  EXPECT_EQ(budget.used_bytes(), 200);
}

TEST(MemoryBudgetTest, PeakIsAHighWaterMark) {
  MemoryBudget budget(0);
  budget.Charge(700);
  budget.Release(700);
  budget.Charge(100);
  EXPECT_EQ(budget.used_bytes(), 100);
  EXPECT_EQ(budget.peak_bytes(), 700);
}

TEST(MemoryBudgetTest, ChargingMayOvershootTheLimit) {
  // Charging never blocks or fails; enforcement is the executor's job at
  // step boundaries.
  MemoryBudget budget(100);
  budget.Charge(250);
  EXPECT_EQ(budget.used_bytes(), 250);
  EXPECT_EQ(budget.OverBudgetBytes(), 150);
  budget.Release(200);
  EXPECT_EQ(budget.OverBudgetBytes(), 0);
}

TEST(MemoryBudgetTest, UnlimitedBudgetIsNeverOver) {
  MemoryBudget budget(0);
  budget.Charge(1 << 30);
  EXPECT_EQ(budget.OverBudgetBytes(), 0);
  EXPECT_FALSE(budget.ExceedsWholeBudget(1 << 30));
  // Accounting still runs so peak usage stays observable.
  EXPECT_EQ(budget.peak_bytes(), 1 << 30);
}

TEST(MemoryBudgetTest, WholeBudgetCheckCatchesOversizeAllocations) {
  MemoryBudget budget(64);
  EXPECT_FALSE(budget.ExceedsWholeBudget(64));
  EXPECT_TRUE(budget.ExceedsWholeBudget(65));
}

TEST(MemoryBudgetTest, ConcurrentChargesDoNotLoseBytes) {
  MemoryBudget budget(0);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&budget] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        budget.Charge(3);
        budget.Release(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(budget.used_bytes(), kThreads * kOpsPerThread * 2);
  EXPECT_GE(budget.peak_bytes(), budget.used_bytes());
}

}  // namespace
}  // namespace dmac
