// AdmissionController: immediate admits within quota, bounded queueing
// with release hand-off, kResourceExhausted backpressure, and prompt exit
// when a queued query's token fires.
#include "governor/admission.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/status.h"
#include "governor/cancel_token.h"

namespace dmac {
namespace {

TEST(AdmissionTest, AdmitsWithinQuotaImmediately) {
  AdmissionController ac({/*max_concurrent=*/2, /*max_queued=*/0,
                          /*total_memory_bytes=*/1000});
  CancelToken inert;
  EXPECT_TRUE(ac.Admit(400, inert).ok());
  EXPECT_TRUE(ac.Admit(400, inert).ok());
  EXPECT_EQ(ac.running(), 2);
  EXPECT_EQ(ac.reserved_bytes(), 800);
  ac.Release(400);
  ac.Release(400);
  EXPECT_EQ(ac.running(), 0);
  EXPECT_EQ(ac.reserved_bytes(), 0);
}

TEST(AdmissionTest, EstimateOverTotalQuotaIsRejectedOutright) {
  AdmissionController ac({2, 16, /*total_memory_bytes=*/1000});
  CancelToken inert;
  // 1001 bytes can never fit, even with everything else done — reject, do
  // not queue.
  Status st = ac.Admit(1001, inert);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st;
  EXPECT_EQ(ac.running(), 0);
  EXPECT_EQ(ac.queue_depth(), 0);
}

TEST(AdmissionTest, FullQueueRejectsWithBackpressure) {
  AdmissionController ac({/*max_concurrent=*/1, /*max_queued=*/0, 0});
  CancelToken inert;
  ASSERT_TRUE(ac.Admit(10, inert).ok());
  Status st = ac.Admit(10, inert);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st;
  ac.Release(10);
}

TEST(AdmissionTest, QueuedRequestAdmitsWhenSlotFrees) {
  AdmissionController ac({/*max_concurrent=*/1, /*max_queued=*/1, 0});
  CancelToken inert;
  ASSERT_TRUE(ac.Admit(10, inert).ok());

  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    Status st = ac.Admit(10, inert);
    EXPECT_TRUE(st.ok()) << st;
    admitted.store(true);
    ac.Release(10);
  });
  // The waiter must queue, not run.
  while (ac.queue_depth() == 0) std::this_thread::yield();
  EXPECT_FALSE(admitted.load());

  ac.Release(10);
  waiter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(ac.running(), 0);
  EXPECT_EQ(ac.queue_depth(), 0);
}

TEST(AdmissionTest, FiredTokenUnblocksAQueuedRequest) {
  AdmissionController ac({/*max_concurrent=*/1, /*max_queued=*/4, 0});
  CancelToken inert;
  ASSERT_TRUE(ac.Admit(10, inert).ok());

  CancelToken token = CancelToken::Cancellable();
  std::atomic<bool> done{false};
  Status queued_status;
  std::thread waiter([&] {
    queued_status = ac.Admit(10, token);
    done.store(true);
  });
  while (ac.queue_depth() == 0) std::this_thread::yield();

  token.Cancel();
  waiter.join();
  ASSERT_TRUE(done.load());
  EXPECT_EQ(queued_status.code(), StatusCode::kCancelled) << queued_status;
  // The cancelled request holds no reservation and left the queue.
  EXPECT_EQ(ac.queue_depth(), 0);
  EXPECT_EQ(ac.running(), 1);
  ac.Release(10);
}

TEST(AdmissionTest, AlreadyExpiredDeadlineNeverWaits) {
  AdmissionController ac({/*max_concurrent=*/1, /*max_queued=*/4, 0});
  CancelToken inert;
  ASSERT_TRUE(ac.Admit(10, inert).ok());
  Status st = ac.Admit(10, CancelToken::WithDeadline(0));
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st;
  ac.Release(10);
}

}  // namespace
}  // namespace dmac
