// SpillStore contract: spilled blocks round-trip bit-identically, damaged
// files surface kDataLoss (and are consumed), and no spill file outlives
// the store.
#include "governor/spill_store.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "fault/checksum.h"
#include "fault/durable_io.h"
#include "fault/fault_spec.h"
#include "matrix/block.h"

namespace dmac {
namespace {

namespace fs = std::filesystem;

std::shared_ptr<SpillStore> MustCreate(std::string dir = "") {
  auto store = SpillStore::Create(std::move(dir));
  EXPECT_TRUE(store.ok()) << store.status();
  return *store;
}

std::vector<fs::path> FilesUnder(const std::string& dir) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  return files;
}

TEST(SpillStoreTest, DenseBlockRoundTripsBitIdentically) {
  auto store = MustCreate();
  const Block original = RandomDenseBlock(17, 9, 42);
  const uint64_t want = BlockChecksum(original);

  auto handle = store->Spill(original);
  ASSERT_TRUE(handle.ok()) << handle.status();
  EXPECT_EQ(store->live_files(), 1);
  EXPECT_GT(store->spilled_bytes(), 0);

  auto restored = store->Restore(*handle);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(BlockChecksum(*restored), want);
  // Restore consumes the file.
  EXPECT_EQ(store->live_files(), 0);
  EXPECT_EQ(store->restored_bytes(), store->spilled_bytes());
}

TEST(SpillStoreTest, SparseBlockRoundTripsBitIdentically) {
  auto store = MustCreate();
  const Block original = RandomSparseBlock(32, 24, 0.2, 7);
  const uint64_t want = BlockChecksum(original);

  auto handle = store->Spill(original);
  ASSERT_TRUE(handle.ok()) << handle.status();
  auto restored = store->Restore(*handle);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ASSERT_TRUE(restored->IsSparse());
  EXPECT_EQ(BlockChecksum(*restored), want);
}

TEST(SpillStoreTest, CorruptedFileIsDataLossAndConsumed) {
  auto store = MustCreate();
  auto handle = store->Spill(RandomDenseBlock(8, 8, 3));
  ASSERT_TRUE(handle.ok()) << handle.status();

  const auto files = FilesUnder(store->dir());
  ASSERT_EQ(files.size(), 1u);
  // Flip one payload byte past the header; the stored checksum goes stale.
  {
    std::fstream f(files[0],
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekp(40);
    char byte = 0;
    f.seekg(40);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(40);
    f.write(&byte, 1);
  }

  auto restored = store->Restore(*handle);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kDataLoss)
      << restored.status();
  // A damaged block never leaks on disk.
  EXPECT_EQ(store->live_files(), 0);
}

TEST(SpillStoreTest, MissingFileIsDataLoss) {
  auto store = MustCreate();
  auto handle = store->Spill(RandomDenseBlock(4, 4, 1));
  ASSERT_TRUE(handle.ok()) << handle.status();
  const auto files = FilesUnder(store->dir());
  ASSERT_EQ(files.size(), 1u);
  fs::remove(files[0]);

  auto restored = store->Restore(*handle);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kDataLoss)
      << restored.status();
}

TEST(SpillStoreTest, RemoveDeletesWithoutReading) {
  auto store = MustCreate();
  auto handle = store->Spill(RandomDenseBlock(8, 8, 5));
  ASSERT_TRUE(handle.ok()) << handle.status();
  ASSERT_EQ(store->live_files(), 1);

  store->Remove(*handle);
  EXPECT_EQ(store->live_files(), 0);
  EXPECT_TRUE(FilesUnder(store->dir()).empty());
  EXPECT_EQ(store->restored_bytes(), 0);
}

TEST(SpillStoreTest, DestructorRemovesRemainingFilesAndOwnedDir) {
  std::string dir;
  {
    auto store = MustCreate();  // fresh unique dir — owned by the store
    dir = store->dir();
    auto h1 = store->Spill(RandomDenseBlock(8, 8, 11));
    auto h2 = store->Spill(RandomSparseBlock(16, 16, 0.3, 12));
    ASSERT_TRUE(h1.ok() && h2.ok());
    ASSERT_EQ(FilesUnder(dir).size(), 2u);
  }
  // No leaked spill files: the whole directory is gone.
  EXPECT_FALSE(fs::exists(dir));
}

// Regression: SpillStore used to fold every write error into one generic
// code. The disk-fault taxonomy must flow through untranslated — ENOSPC is
// terminal backpressure (kResourceExhausted), a short write is a retryable
// environment fault (kUnavailable), a read-side flip is kDataLoss.
TEST(SpillStoreTest, EnospcSurfacesAsResourceExhausted) {
  DiskFaultSpec spec;
  spec.enospc_prob = 1.0;
  auto store =
      SpillStore::Create("", std::make_shared<StorageIO>(spec, /*seed=*/1));
  ASSERT_TRUE(store.ok()) << store.status();
  auto handle = (*store)->Spill(RandomDenseBlock(8, 8, 3));
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kResourceExhausted)
      << handle.status();
  EXPECT_EQ((*store)->live_files(), 0);
}

TEST(SpillStoreTest, ShortWriteSurfacesAsUnavailable) {
  DiskFaultSpec spec;
  spec.short_write_prob = 1.0;
  auto store =
      SpillStore::Create("", std::make_shared<StorageIO>(spec, /*seed=*/2));
  ASSERT_TRUE(store.ok()) << store.status();
  auto handle = (*store)->Spill(RandomDenseBlock(8, 8, 3));
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kUnavailable)
      << handle.status();
  // The failed spill leaves no file behind.
  EXPECT_TRUE(FilesUnder((*store)->dir()).empty());
}

TEST(SpillStoreTest, ReadFlipSurfacesAsDataLoss) {
  DiskFaultSpec spec;
  spec.read_flip_prob = 1.0;
  auto store =
      SpillStore::Create("", std::make_shared<StorageIO>(spec, /*seed=*/3));
  ASSERT_TRUE(store.ok()) << store.status();
  auto handle = (*store)->Spill(RandomDenseBlock(12, 12, 5));
  ASSERT_TRUE(handle.ok()) << handle.status();
  auto restored = (*store)->Restore(*handle);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kDataLoss)
      << restored.status();
  // Detected corruption consumes the file like any other restore.
  EXPECT_EQ((*store)->live_files(), 0);
}

// SpillStore files and durable checkpoint block files share one format:
// bytes written by the store parse with the shared deserializer and vice
// versa.
TEST(SpillStoreTest, FileFormatIsTheSharedBlockFormat) {
  auto store = MustCreate();
  const Block original = RandomSparseBlock(20, 14, 0.25, 8);
  auto handle = store->Spill(original);
  ASSERT_TRUE(handle.ok()) << handle.status();
  const auto files = FilesUnder(store->dir());
  ASSERT_EQ(files.size(), 1u);
  std::ifstream in(files[0], std::ios::binary);
  ASSERT_TRUE(in.is_open());
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes, SerializeBlock(original));
  auto parsed = DeserializeBlock(bytes, "format-compat");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(BlockChecksum(*parsed), BlockChecksum(original));
}

TEST(SpillStoreTest, HandlesAreDistinct) {
  auto store = MustCreate();
  auto h1 = store->Spill(RandomDenseBlock(4, 4, 1));
  auto h2 = store->Spill(RandomDenseBlock(4, 4, 2));
  ASSERT_TRUE(h1.ok() && h2.ok());
  EXPECT_NE(*h1, *h2);
  EXPECT_NE(*h1, SpillStore::kNoHandle);
  EXPECT_EQ(store->live_files(), 2);
}

}  // namespace
}  // namespace dmac
