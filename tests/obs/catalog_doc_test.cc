// Enforces catalog <-> documentation parity: every metric the registry can
// emit is documented in docs/observability.md's catalog table, and the
// table lists no metric the registry doesn't know. This is the test the
// catalog comments point at — adding a metric without documenting it (or
// documenting a renamed one) fails here.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "obs/metrics.h"

namespace dmac {
namespace {

std::string ReadDoc() {
  const std::string path =
      std::string(DMAC_SOURCE_DIR) + "/docs/observability.md";
  std::ifstream file(path);
  EXPECT_TRUE(file) << "cannot open " << path;
  std::stringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

/// Metric names from the doc's catalog table: backticked first cells of
/// rows between the "<!-- metric-catalog-begin -->" / "-end" markers.
std::set<std::string> DocumentedNames(const std::string& doc) {
  std::set<std::string> names;
  const size_t begin = doc.find("<!-- metric-catalog-begin -->");
  const size_t end = doc.find("<!-- metric-catalog-end -->");
  EXPECT_NE(begin, std::string::npos) << "catalog begin marker missing";
  EXPECT_NE(end, std::string::npos) << "catalog end marker missing";
  if (begin == std::string::npos || end == std::string::npos) return names;
  std::istringstream lines(doc.substr(begin, end - begin));
  std::string line;
  while (std::getline(lines, line)) {
    // Table rows look like: | `exec.shuffle.bytes` | counter | ...
    const size_t open = line.find("| `");
    if (open != 0) continue;
    const size_t close = line.find('`', open + 3);
    if (close == std::string::npos) continue;
    names.insert(line.substr(open + 3, close - open - 3));
  }
  return names;
}

TEST(CatalogDocTest, EveryCatalogMetricIsDocumented) {
  const std::set<std::string> documented = DocumentedNames(ReadDoc());
  for (const MetricSpec& spec : MetricCatalog()) {
    EXPECT_TRUE(documented.count(spec.name))
        << "metric " << spec.name
        << " is in MetricCatalog() but not in docs/observability.md";
  }
}

TEST(CatalogDocTest, EveryDocumentedMetricIsInTheCatalog) {
  std::set<std::string> catalog;
  for (const MetricSpec& spec : MetricCatalog()) catalog.insert(spec.name);
  for (const std::string& name : DocumentedNames(ReadDoc())) {
    EXPECT_TRUE(catalog.count(name))
        << "docs/observability.md documents " << name
        << ", which MetricCatalog() does not define";
  }
}

TEST(CatalogDocTest, DocTableStatesEachMetricsUnit) {
  // Each documented row must carry the catalog's unit for its metric, so
  // the doc cannot silently drift on units either.
  const std::string doc = ReadDoc();
  const size_t begin = doc.find("<!-- metric-catalog-begin -->");
  const size_t end = doc.find("<!-- metric-catalog-end -->");
  ASSERT_NE(begin, std::string::npos);
  ASSERT_NE(end, std::string::npos);
  const std::string table = doc.substr(begin, end - begin);
  for (const MetricSpec& spec : MetricCatalog()) {
    std::istringstream lines(table);
    std::string line;
    bool found = false;
    while (std::getline(lines, line)) {
      if (line.find("| `" + std::string(spec.name) + "`") != 0) continue;
      found = true;
      EXPECT_NE(line.find(spec.unit), std::string::npos)
          << spec.name << " row does not state unit " << spec.unit;
    }
    EXPECT_TRUE(found) << spec.name;
  }
}

}  // namespace
}  // namespace dmac
