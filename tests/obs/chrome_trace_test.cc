#include "obs/chrome_trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace_check.h"

namespace dmac {
namespace {

/// Deterministic event set covering every span category, driver and worker
/// attribution, and args rendering. Mirrors testdata/golden_trace.json.
std::vector<TraceEvent> GoldenEvents() {
  auto make = [](const char* cat, std::string name, int64_t start_ns,
                 int64_t dur_ns, int worker, uint32_t tid, std::string args) {
    TraceEvent e;
    e.category = cat;
    e.name = std::move(name);
    e.start_ns = start_ns;
    e.dur_ns = dur_ns;
    e.worker = worker;
    e.tid = tid;
    e.args = std::move(args);
    return e;
  };
  return {
      make(kTracePlan, "decompose", 1000, 2000, -1, 0, ""),
      make(kTraceStage, "stage 1", 5000, 10000, -1, 0, "\"stage\":1"),
      make(kTraceComm, "broadcast", 6000, 1500, -1, 0,
           "\"bytes\":4096,\"kind\":\"broadcast\""),
      make(kTraceWorker, "compute[multiply:RMM1]", 8000, 4000, 0, 0,
           "\"stage\":1"),
      make(kTraceTask, "multiply", 9000, 250, 1, 2, ""),
  };
}

std::string ReadFile(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file) << "cannot open " << path;
  std::stringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

TEST(ChromeTraceTest, MatchesGoldenFile) {
  // The exporter's output format is a stable contract (Perfetto parses
  // it); any change must be deliberate and update the golden file.
  const std::string golden =
      ReadFile(std::string(DMAC_SOURCE_DIR) +
               "/tests/obs/testdata/golden_trace.json");
  EXPECT_EQ(ChromeTraceJson(GoldenEvents()), golden);
}

TEST(ChromeTraceTest, GoldenPassesTheValidator) {
  auto summary = CheckChromeTrace(ChromeTraceJson(GoldenEvents()));
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->total_events, 5);
  EXPECT_EQ(summary->metadata_events, 6);  // 3 pids x (name + sort_index)
  EXPECT_EQ(summary->plan_spans, 1);
  EXPECT_EQ(summary->stage_spans, 1);
  EXPECT_EQ(summary->comm_spans, 1);
  EXPECT_EQ(summary->worker_spans, 1);
  EXPECT_EQ(summary->task_spans, 1);
  EXPECT_EQ(summary->worker_attributed, 2);  // the worker + task spans
  EXPECT_EQ(summary->max_pid, 2);
}

TEST(ChromeTraceTest, EmptyTraceIsValid) {
  auto summary = CheckChromeTrace(ChromeTraceJson({}));
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->total_events, 0);
  EXPECT_EQ(summary->metadata_events, 0);
}

TEST(ChromeTraceTest, FileRoundTripThroughTheValidator) {
  const std::string path =
      ::testing::TempDir() + "/chrome_trace_roundtrip.json";
  ASSERT_TRUE(WriteChromeTraceFile(path, GoldenEvents()).ok());
  auto summary = CheckChromeTraceFile(path);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->total_events, 5);
  std::remove(path.c_str());
}

TEST(ChromeTraceTest, WriteToUnwritablePathFails) {
  EXPECT_FALSE(
      WriteChromeTraceFile("/nonexistent-dir/trace.json", {}).ok());
}

TEST(ChromeTraceTest, ValidatorRejectsMalformedDocuments) {
  EXPECT_FALSE(CheckChromeTrace("not json").ok());
  EXPECT_FALSE(CheckChromeTrace("{}").ok());  // no traceEvents
  EXPECT_FALSE(CheckChromeTrace("{\"traceEvents\":42}").ok());
  // X event missing its required timing fields.
  EXPECT_FALSE(
      CheckChromeTrace(
          "{\"traceEvents\":[{\"ph\":\"X\",\"name\":\"x\",\"cat\":\"task\"}]}")
          .ok());
}

TEST(ChromeTraceTest, EscapesSpecialCharactersInNames) {
  TraceEvent e;
  e.category = kTraceComm;
  e.name = "load \"file\\path\"\n";
  e.start_ns = 0;
  e.dur_ns = 1;
  const std::string json = ChromeTraceJson({e});
  EXPECT_NE(json.find("load \\\"file\\\\path\\\"\\n"), std::string::npos);
  EXPECT_TRUE(CheckChromeTrace(json).ok());
}

}  // namespace
}  // namespace dmac
