#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

namespace dmac {
namespace {

/// Enables the global registry with zeroed instruments for one test and
/// restores the disabled default afterwards.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricRegistry::Global().Reset();
    MetricRegistry::Global().SetEnabled(true);
  }
  void TearDown() override {
    MetricRegistry::Global().SetEnabled(false);
    MetricRegistry::Global().Reset();
  }
};

TEST_F(MetricsTest, CatalogNamesAreUniqueAndDotted) {
  std::set<std::string> names;
  for (const MetricSpec& spec : MetricCatalog()) {
    EXPECT_TRUE(names.insert(spec.name).second)
        << "duplicate catalog name " << spec.name;
    EXPECT_NE(std::string(spec.name).find('.'), std::string::npos);
    EXPECT_STRNE(spec.unit, "");
    EXPECT_STRNE(spec.help, "");
  }
}

TEST_F(MetricsTest, CounterAccumulates) {
  Counter* c = MetricRegistry::Global().counter(kMetricShuffleBytes);
  c->Add(100.0);
  c->Add(28.0);
  c->Increment();
  EXPECT_DOUBLE_EQ(c->value(), 129.0);
}

TEST_F(MetricsTest, GaugeKeepsLastValue) {
  Gauge* g = MetricRegistry::Global().gauge(kMetricStages);
  g->Set(5);
  g->Set(12);
  EXPECT_DOUBLE_EQ(g->value(), 12.0);
}

TEST_F(MetricsTest, HistogramTracksCountSumMaxAndQuantiles) {
  Histogram* h = MetricRegistry::Global().histogram(kMetricQueueWaitSeconds);
  // 98 microsecond-scale waits and 2 millisecond outliers: the median must
  // resolve to a microsecond bucket edge, p99 to a millisecond one.
  for (int i = 0; i < 98; ++i) h->Observe(1e-6);
  h->Observe(1e-3);
  h->Observe(1e-3);
  EXPECT_EQ(h->count(), 100);
  EXPECT_NEAR(h->sum(), 98e-6 + 2e-3, 1e-12);
  EXPECT_DOUBLE_EQ(h->max(), 1e-3);
  EXPECT_NEAR(h->mean(), h->sum() / 100, 1e-12);
  EXPECT_LE(h->Quantile(0.5), 1e-5);
  EXPECT_GE(h->Quantile(0.99), 1e-3 / 2);
  EXPECT_LE(h->Quantile(0.99), 4e-3);
}

TEST_F(MetricsTest, InstrumentPointersSurviveReset) {
  Counter* c = MetricRegistry::Global().counter(kMetricEngineTasks);
  c->Add(7);
  MetricRegistry::Global().Reset();
  EXPECT_DOUBLE_EQ(c->value(), 0.0);
  c->Add(3);  // same pointer keeps working
  EXPECT_DOUBLE_EQ(
      MetricRegistry::Global().counter(kMetricEngineTasks)->value(), 3.0);
}

TEST_F(MetricsTest, DisabledUpdatesAreDropped) {
  Counter* c = MetricRegistry::Global().counter(kMetricPoolAcquires);
  Gauge* g = MetricRegistry::Global().gauge(kMetricPeakMemoryBytes);
  Histogram* h =
      MetricRegistry::Global().histogram(kMetricTaskSecondsMultiply);
  MetricRegistry::Global().SetEnabled(false);
  c->Add(5);
  g->Set(5);
  h->Observe(5);
  EXPECT_DOUBLE_EQ(c->value(), 0.0);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  EXPECT_EQ(h->count(), 0);
}

TEST_F(MetricsTest, CollectSkipsUntouchedInstrumentsAndKeepsCatalogOrder) {
  MetricRegistry::Global().counter(kMetricShuffleBytes)->Add(64);
  MetricRegistry::Global().gauge(kMetricStages)->Set(2);
  std::vector<MetricValue> values = MetricRegistry::Global().Collect();
  ASSERT_EQ(values.size(), 2u);
  // Catalog lists exec.shuffle.bytes before exec.stages.
  EXPECT_EQ(values[0].name, kMetricShuffleBytes);
  EXPECT_DOUBLE_EQ(values[0].value, 64.0);
  EXPECT_EQ(values[1].name, kMetricStages);
}

TEST_F(MetricsTest, JsonAndCsvDumpsContainTouchedMetrics) {
  MetricRegistry::Global().counter(kMetricBroadcastRounds)->Increment();
  MetricRegistry::Global()
      .histogram(kMetricTaskSecondsAggregate)
      ->Observe(0.25);
  const std::string json = MetricRegistry::Global().ToJson();
  EXPECT_NE(json.find("\"metrics\":["), std::string::npos);
  EXPECT_NE(json.find("\"exec.broadcast.rounds\""), std::string::npos);
  EXPECT_NE(json.find("\"engine.task.seconds.aggregate\""),
            std::string::npos);
  const std::string csv = MetricRegistry::Global().ToCsv();
  EXPECT_EQ(csv.rfind("name,kind,unit,value,count,mean,p50,p99,max\n", 0),
            0u);
  EXPECT_NE(csv.find("exec.broadcast.rounds,counter,rounds,1"),
            std::string::npos);
}

TEST_F(MetricsTest, ConcurrentRecordingIsRaceFreeAndLosesNothing) {
  // Hammered from many threads; run under TSan in CI. Counter and
  // histogram totals must come out exact (CAS loops, not racy +=).
  Counter* c = MetricRegistry::Global().counter(kMetricEngineTasks);
  Histogram* h = MetricRegistry::Global().histogram(kMetricQueueWaitSeconds);
  Gauge* g = MetricRegistry::Global().gauge(kMetricStages);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        h->Observe(1e-6 * (t + 1));
        g->Set(t + 1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_DOUBLE_EQ(c->value(), 1.0 * kThreads * kPerThread);
  EXPECT_EQ(h->count(), int64_t{kThreads} * kPerThread);
  EXPECT_GE(g->value(), 1.0);
  EXPECT_LE(g->value(), 1.0 * kThreads);
}

using MetricsDeathTest = MetricsTest;

TEST_F(MetricsDeathTest, UnknownNameAborts) {
  EXPECT_DEATH(MetricRegistry::Global().counter("no.such.metric"), "catalog");
}

TEST_F(MetricsDeathTest, KindMismatchAborts) {
  // exec.stages is a gauge; asking for a counter of that name is a bug.
  EXPECT_DEATH(MetricRegistry::Global().counter(kMetricStages),
               "requested as");
}

}  // namespace
}  // namespace dmac
