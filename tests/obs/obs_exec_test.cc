// End-to-end observability: run a real program (GNMF) on the simulated
// cluster with tracing + metrics on and check the resulting trace and
// metric dump deliver what docs/observability.md promises — and that a
// disabled run records nothing at all.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "apps/gnmf.h"
#include "apps/runner.h"
#include "data/synthetic.h"
#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/session.h"
#include "obs/trace.h"
#include "obs/trace_check.h"

namespace dmac {
namespace {

constexpr int64_t kBs = 16;
constexpr int kWorkers = 3;

Result<RunOutcome> RunSmallGnmf() {
  GnmfConfig config{64, 48, 0.2, 6, 2};
  Program program = BuildGnmfProgram(config);
  LocalMatrix v = SyntheticSparse(64, 48, 0.2, kBs, 31);
  Bindings bindings;
  bindings.emplace("V", &v);
  RunConfig run;
  run.num_workers = kWorkers;
  run.block_size = kBs;
  return RunProgram(program, bindings, run);
}

TEST(ObsExecTest, EnabledRunProducesAllSpanCategoriesAndMetrics) {
  EnableObservability();
  auto outcome = RunSmallGnmf();
  DisableObservability();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();

  const auto events = TraceRecorder::Global().Snapshot();
  ASSERT_FALSE(events.empty());
  std::set<std::string> categories;
  int worker_attributed = 0;
  int max_worker = -1;
  for (const TraceEvent& e : events) {
    categories.insert(e.category);
    if (e.worker >= 0) {
      ++worker_attributed;
      max_worker = std::max(max_worker, e.worker);
    }
  }
  // The full span model: plan passes, stages, steps, comm events, worker
  // compute, and block tasks must all appear in one executed program.
  for (const char* cat : {kTracePlan, kTraceStage, kTraceStep, kTraceComm,
                          kTraceWorker, kTraceTask}) {
    EXPECT_TRUE(categories.count(cat)) << "no " << cat << " spans";
  }
  EXPECT_GT(worker_attributed, 0);
  // Worker ids stay within the simulated cluster.
  EXPECT_LT(max_worker, kWorkers);
  EXPECT_EQ(TraceRecorder::Global().dropped_events(), 0);

  // The Chrome export of this run passes the independent validator.
  auto summary = CheckChromeTrace(ChromeTraceJson(events));
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_GT(summary->stage_spans, 0);
  EXPECT_GT(summary->comm_spans, 0);
  EXPECT_GT(summary->task_spans, 0);
  EXPECT_GT(summary->worker_attributed, 0);
  EXPECT_EQ(summary->max_pid, kWorkers);  // pid w+1, all workers busy

  // Metrics: the executed-plan instruments and the engine instruments all
  // saw traffic, and the dump carries them.
  auto& reg = MetricRegistry::Global();
  EXPECT_GT(reg.counter(kMetricStepsExecuted)->value(), 0);
  EXPECT_GT(reg.counter(kMetricShuffleBytes)->value() +
                reg.counter(kMetricBroadcastBytes)->value(),
            0);
  EXPECT_GT(reg.counter(kMetricEngineTasks)->value(), 0);
  EXPECT_GT(reg.gauge(kMetricStages)->value(), 0);
  EXPECT_GT(reg.gauge(kMetricPlanGenerateSeconds)->value(), 0);
  EXPECT_GT(reg.histogram(kMetricTaskSecondsMultiply)->count(), 0);
  // Kernel accounting (docs/kernels.md): every multiply task contributes
  // flops, and each observes its packing time (possibly zero).
  EXPECT_GT(reg.counter(kMetricGemmFlops)->value(), 0);
  EXPECT_GT(reg.histogram(kMetricGemmPackSeconds)->count(), 0);
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find(kMetricEngineTasks), std::string::npos);

  // Engine task counter matches the number of task spans exactly — every
  // dispatched block task got one span and one count.
  EXPECT_DOUBLE_EQ(reg.counter(kMetricEngineTasks)->value(),
                   static_cast<double>(summary->task_spans));

  // Trace comm spans match the metric round counters (one span per round).
  EXPECT_DOUBLE_EQ(static_cast<double>(summary->comm_spans),
                   reg.counter(kMetricShuffleRounds)->value() +
                       reg.counter(kMetricBroadcastRounds)->value());

  TraceRecorder::Global().Clear();
  reg.Reset();
}

TEST(ObsExecTest, DisabledRunRecordsNothing) {
  TraceRecorder::Global().Clear();
  MetricRegistry::Global().Reset();
  ASSERT_FALSE(TraceRecorder::Global().enabled());
  ASSERT_FALSE(MetricRegistry::Global().enabled());

  auto outcome = RunSmallGnmf();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();

  EXPECT_TRUE(TraceRecorder::Global().Snapshot().empty());
  EXPECT_TRUE(MetricRegistry::Global().Collect().empty());
}

TEST(ObsExecTest, EnabledAndDisabledRunsComputeTheSameResult) {
  // Observability must be read-only: identical seeds give identical
  // numerical results and identical comm accounting with obs on or off.
  auto plain = RunSmallGnmf();
  ASSERT_TRUE(plain.ok());
  EnableObservability();
  auto observed = RunSmallGnmf();
  DisableObservability();
  TraceRecorder::Global().Clear();
  MetricRegistry::Global().Reset();
  ASSERT_TRUE(observed.ok());

  const LocalMatrix& w1 = plain->result.matrices.at("W");
  const LocalMatrix& w2 = observed->result.matrices.at("W");
  EXPECT_DOUBLE_EQ(w1.Sum(), w2.Sum());
  EXPECT_EQ(w1.Nnz(), w2.Nnz());
  EXPECT_DOUBLE_EQ(plain->result.stats.comm_bytes(),
                   observed->result.stats.comm_bytes());
  EXPECT_EQ(plain->result.stats.comm_events(),
            observed->result.stats.comm_events());
}

}  // namespace
}  // namespace dmac
