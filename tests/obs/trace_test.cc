#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace dmac {
namespace {

/// Enables the global recorder with a clean buffer for one test, and
/// restores the disabled default afterwards so tests cannot leak state.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::Global().Clear();
    TraceRecorder::Global().SetEnabled(true);
  }
  void TearDown() override {
    TraceRecorder::Global().SetEnabled(false);
    TraceRecorder::Global().Clear();
  }
};

TEST_F(TraceTest, SpanRecordsCategoryNameAndDuration) {
  { TraceSpan span(kTraceStage, "stage 1", /*worker=*/-1); }
  auto events = TraceRecorder::Global().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].category, kTraceStage);
  EXPECT_EQ(events[0].name, "stage 1");
  EXPECT_EQ(events[0].worker, -1);
  EXPECT_GE(events[0].start_ns, 0);
  EXPECT_GE(events[0].dur_ns, 0);
}

TEST_F(TraceTest, NestedSpansOrderByStartAndContainChildren) {
  {
    TraceSpan outer(kTraceStage, "outer");
    TraceSpan inner(kTraceStep, "inner");
  }
  auto events = TraceRecorder::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Snapshot orders by start time: outer opened first.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "inner");
  // The child's interval nests inside the parent's.
  EXPECT_LE(events[0].start_ns, events[1].start_ns);
  EXPECT_GE(events[0].start_ns + events[0].dur_ns,
            events[1].start_ns + events[1].dur_ns);
}

TEST_F(TraceTest, CloseIsIdempotent) {
  TraceSpan span(kTraceComm, "shuffle");
  span.Close();
  span.Close();  // second Close and the destructor must both be no-ops
  EXPECT_EQ(TraceRecorder::Global().Snapshot().size(), 1u);
}

TEST_F(TraceTest, SetArgsSurvivesIntoTheEvent) {
  {
    TraceSpan span(kTraceComm, "broadcast");
    span.set_args(TraceArg("bytes", int64_t{4096}) + "," +
                  TraceArg("kind", "broadcast"));
  }
  auto events = TraceRecorder::Global().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].args, "\"bytes\":4096,\"kind\":\"broadcast\"");
}

TEST_F(TraceTest, TraceArgEscapesStrings) {
  EXPECT_EQ(TraceArg("k", "a\"b\\c"), "\"k\":\"a\\\"b\\\\c\"");
  EXPECT_EQ(TraceArg("n", int64_t{-3}), "\"n\":-3");
  EXPECT_EQ(TraceArg("x", 0.5), "\"x\":0.5");
}

TEST_F(TraceTest, ClearDiscardsBufferedEvents) {
  { TraceSpan span(kTraceTask, "t"); }
  ASSERT_EQ(TraceRecorder::Global().Snapshot().size(), 1u);
  TraceRecorder::Global().Clear();
  EXPECT_TRUE(TraceRecorder::Global().Snapshot().empty());
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  TraceRecorder::Global().SetEnabled(false);
  {
    TraceSpan span(kTraceStage, "invisible");
    span.set_args("\"k\":1");  // must be inert, not crash
  }
  // Direct Record() is also ignored while disabled.
  TraceEvent e;
  e.category = kTraceTask;
  e.name = "direct";
  TraceRecorder::Global().Record(std::move(e));
  EXPECT_TRUE(TraceRecorder::Global().Snapshot().empty());
}

TEST_F(TraceTest, SpanCrossingADisableIsDropped) {
  // Record() checks the enabled flag too, so a span still open when the
  // recorder is disabled is dropped at Close() rather than recorded with
  // a misleading duration. (Enable/disable happens between runs, never
  // mid-span, in normal use — see obs/session.h.)
  TraceSpan span(kTraceStage, "crossing");
  TraceRecorder::Global().SetEnabled(false);
  span.Close();
  EXPECT_TRUE(TraceRecorder::Global().Snapshot().empty());
}

TEST_F(TraceTest, ThreadsGetDistinctStableTids) {
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      TraceSpan a(kTraceTask, "t" + std::to_string(t), /*worker=*/t);
      TraceSpan b(kTraceTask, "t" + std::to_string(t) + "b", /*worker=*/t);
    });
  }
  for (auto& th : threads) th.join();
  auto events = TraceRecorder::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u * kThreads);
  // Both spans of one worker carry that thread's tid.
  for (int t = 0; t < kThreads; ++t) {
    uint32_t tid = 0;
    bool seen = false;
    for (const TraceEvent& e : events) {
      if (e.worker != t) continue;
      if (!seen) {
        tid = e.tid;
        seen = true;
      } else {
        EXPECT_EQ(e.tid, tid) << "worker " << t;
      }
    }
    EXPECT_TRUE(seen);
  }
}

TEST_F(TraceTest, RegistrationRacesSafelyWithSnapshot) {
  // Regression: ThreadBuffer::tid used to be assigned after the buffer was
  // published in the registry, so a concurrent Snapshot could read tid
  // under buf->mu while the registering thread was still writing it under
  // registry_mu_ — a race TSan flags. The id is now fixed at construction
  // (const), before publication. Register fresh threads while another
  // thread snapshots continuously; every recorded event must carry a
  // distinct per-thread tid.
  constexpr int kThreads = 8;
  std::atomic<bool> stop{false};
  std::thread snapshotter([&stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)TraceRecorder::Global().Snapshot();
    }
  });
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      // First span on a fresh thread registers a new buffer.
      TraceSpan span(kTraceTask, "reg" + std::to_string(t), /*worker=*/t);
    });
  }
  for (auto& th : threads) th.join();
  stop.store(true, std::memory_order_relaxed);
  snapshotter.join();

  auto events = TraceRecorder::Global().Snapshot();
  ASSERT_EQ(events.size(), static_cast<size_t>(kThreads));
  std::vector<uint32_t> tids;
  for (const TraceEvent& e : events) tids.push_back(e.tid);
  std::sort(tids.begin(), tids.end());
  EXPECT_EQ(std::unique(tids.begin(), tids.end()), tids.end());
}

TEST_F(TraceTest, SnapshotIsSortedByStartTime) {
  for (int i = 0; i < 50; ++i) {
    TraceSpan span(kTraceTask, "t" + std::to_string(i));
  }
  auto events = TraceRecorder::Global().Snapshot();
  ASSERT_EQ(events.size(), 50u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].start_ns, events[i].start_ns);
  }
}

}  // namespace
}  // namespace dmac
