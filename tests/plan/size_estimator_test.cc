#include "plan/size_estimator.h"

#include <gtest/gtest.h>

#include "lang/decompose.h"
#include "lang/program.h"

namespace dmac {
namespace {

StatsMap EstimateFor(const Program& p) {
  auto ops = Decompose(p);
  EXPECT_TRUE(ops.ok()) << ops.status();
  auto stats = EstimateSizes(*ops);
  EXPECT_TRUE(stats.ok()) << stats.status();
  return *stats;
}

TEST(SizeEstimatorTest, MultiplyShapeAndWorstCaseSparsity) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {100, 50}, 0.01);
  Mat b = pb.Load("B", {50, 30}, 0.02);
  Mat c = pb.Var("C");
  pb.Assign(c, a.mm(b));
  pb.Output(c);
  StatsMap stats = EstimateFor(pb.Build());
  const MatrixStats& cs = stats.at("C#1");
  EXPECT_EQ(cs.shape, (Shape{100, 30}));
  EXPECT_DOUBLE_EQ(cs.sparsity, 1.0);  // worst case for multiplication
}

TEST(SizeEstimatorTest, CellwiseSparsityIsSumCapped) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {10, 10}, 0.3);
  Mat b = pb.Load("B", {10, 10}, 0.4);
  Mat c = pb.Var("C");
  Mat d = pb.Var("D");
  pb.Assign(c, a + b);
  pb.Assign(d, c * c);
  pb.Output(c);
  pb.Output(d);
  StatsMap stats = EstimateFor(pb.Build());
  EXPECT_DOUBLE_EQ(stats.at("C#1").sparsity, 0.7);
  EXPECT_DOUBLE_EQ(stats.at("D#1").sparsity, 1.0);  // 0.7+0.7 capped at 1
}

TEST(SizeEstimatorTest, UnaryPreservesSparsity) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {10, 10}, 0.25);
  Mat c = pb.Var("C");
  pb.Assign(c, a * 3.0);
  pb.Output(c);
  StatsMap stats = EstimateFor(pb.Build());
  EXPECT_DOUBLE_EQ(stats.at("C#1").sparsity, 0.25);
}

TEST(SizeEstimatorTest, TransposedRefSwapsShape) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {100, 50}, 0.5);
  Mat c = pb.Var("C");
  pb.Assign(c, a.t().mm(a));
  pb.Output(c);
  StatsMap stats = EstimateFor(pb.Build());
  EXPECT_EQ(stats.at("C#1").shape, (Shape{50, 50}));
}

TEST(SizeEstimatorTest, EstimatedBytesPicksCheaperEncoding) {
  // Dense: 4·m·n. Sparse: 4·n + 8·m·n·s. Crossover at s = 0.5 (minus the
  // pointer term).
  MatrixStats dense{{100, 100}, 0.9};
  EXPECT_DOUBLE_EQ(dense.EstimatedBytes(), 4.0 * 100 * 100);
  MatrixStats sparse{{100, 100}, 0.01};
  EXPECT_DOUBLE_EQ(sparse.EstimatedBytes(), 4.0 * 100 + 8.0 * 100 * 100 * 0.01);
  EXPECT_LT(sparse.EstimatedBytes(), dense.EstimatedBytes());
}

TEST(SizeEstimatorTest, DimensionMismatchDetected) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {10, 10}, 1.0);
  Mat b = pb.Load("B", {10, 11}, 1.0);
  Mat c = pb.Var("C");
  pb.Assign(c, a + b);
  pb.Output(c);
  auto ops = Decompose(pb.Build());
  ASSERT_TRUE(ops.ok());
  EXPECT_EQ(EstimateSizes(*ops).status().code(),
            StatusCode::kDimensionMismatch);
}

TEST(SizeEstimatorTest, ValueReduceRequiresScalarShape) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {10, 10}, 1.0);
  Scl s = pb.ScalarVar("s", 0.0);
  pb.Assign(s, a.Value());  // not 1x1
  pb.OutputScalar(s);
  auto ops = Decompose(pb.Build());
  ASSERT_TRUE(ops.ok());
  EXPECT_FALSE(EstimateSizes(*ops).ok());
}

TEST(SizeEstimatorTest, StatsForRefTransposes) {
  StatsMap stats;
  stats["A"] = {{30, 20}, 0.5};
  auto direct = StatsForRef(stats, {"A", false});
  auto transposed = StatsForRef(stats, {"A", true});
  ASSERT_TRUE(direct.ok() && transposed.ok());
  EXPECT_EQ(direct->shape, (Shape{30, 20}));
  EXPECT_EQ(transposed->shape, (Shape{20, 30}));
  EXPECT_FALSE(StatsForRef(stats, {"missing", false}).ok());
}

}  // namespace
}  // namespace dmac
