// Exhaustive verification of the paper's Table 2: all 18 combinations of
// {B = A, B = Aᵀ} × {pi ∈ r,c,b} × {pj ∈ r,c,b} map onto exactly the eight
// dependency types, with the right communication category.
#include "plan/dependency.h"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

namespace dmac {
namespace {

constexpr Scheme kR = Scheme::kRow;
constexpr Scheme kC = Scheme::kCol;
constexpr Scheme kB = Scheme::kBroadcast;

struct Table2Row {
  bool transposed;  // B == Aᵀ
  Scheme pi;        // producer scheme
  Scheme pj;        // consumer requirement
  DependencyType expected;
};

// The full 18-row truth table.
const Table2Row kTable2[] = {
    // --- A = B ---
    {false, kR, kR, DependencyType::kReference},
    {false, kC, kC, DependencyType::kReference},
    {false, kB, kB, DependencyType::kReference},
    {false, kR, kC, DependencyType::kPartition},
    {false, kC, kR, DependencyType::kPartition},
    {false, kR, kB, DependencyType::kBroadcast},
    {false, kC, kB, DependencyType::kBroadcast},
    {false, kB, kR, DependencyType::kExtract},
    {false, kB, kC, DependencyType::kExtract},
    // --- B = Aᵀ ---
    {true, kR, kR, DependencyType::kTransposePartition},
    {true, kC, kC, DependencyType::kTransposePartition},
    {true, kR, kC, DependencyType::kTranspose},
    {true, kC, kR, DependencyType::kTranspose},
    {true, kB, kB, DependencyType::kTranspose},
    {true, kR, kB, DependencyType::kTransposeBroadcast},
    {true, kC, kB, DependencyType::kTransposeBroadcast},
    {true, kB, kR, DependencyType::kExtractTranspose},
    {true, kB, kC, DependencyType::kExtractTranspose},
};

class Table2Test : public ::testing::TestWithParam<Table2Row> {};

TEST_P(Table2Test, ClassificationMatchesPaper) {
  const Table2Row& row = GetParam();
  EXPECT_EQ(ClassifyDependency(row.transposed, row.pi, row.pj), row.expected)
      << (row.transposed ? "B=A^T " : "B=A ") << SchemeChar(row.pi) << "->"
      << SchemeChar(row.pj);
}

TEST_P(Table2Test, CommunicationCategoryMatchesPaper) {
  const Table2Row& row = GetParam();
  const bool expect_comm = row.expected == DependencyType::kPartition ||
                           row.expected == DependencyType::kTransposePartition ||
                           row.expected == DependencyType::kBroadcast ||
                           row.expected == DependencyType::kTransposeBroadcast;
  EXPECT_EQ(IsCommunicationDependency(
                ClassifyDependency(row.transposed, row.pi, row.pj)),
            expect_comm);
}

INSTANTIATE_TEST_SUITE_P(
    AllEighteenCombinations, Table2Test, ::testing::ValuesIn(kTable2),
    [](const ::testing::TestParamInfo<Table2Row>& info) {
      const Table2Row& r = info.param;
      return std::string(r.transposed ? "T" : "N") + SchemeChar(r.pi) +
             SchemeChar(r.pj);
    });

TEST(DependencyTest, EveryCombinationClassified) {
  // No (transposed, pi, pj) combination may fall through to kNone.
  for (bool t : {false, true}) {
    for (Scheme pi : {kR, kC, kB}) {
      for (Scheme pj : {kR, kC, kB}) {
        EXPECT_NE(ClassifyDependency(t, pi, pj), DependencyType::kNone);
      }
    }
  }
}

TEST(DependencyTest, ExactlyEightDistinctTypesUsed) {
  std::set<DependencyType> seen;
  for (bool t : {false, true}) {
    for (Scheme pi : {kR, kC, kB}) {
      for (Scheme pj : {kR, kC, kB}) {
        seen.insert(ClassifyDependency(t, pi, pj));
      }
    }
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(DependencyCostTest, SituationCostsMatchSection41) {
  const double bytes = 1000;
  const int n = 4;
  // Situation 1: non-communication → 0.
  EXPECT_EQ(DependencyCommBytes(DependencyType::kReference, bytes, n), 0);
  EXPECT_EQ(DependencyCommBytes(DependencyType::kTranspose, bytes, n), 0);
  EXPECT_EQ(DependencyCommBytes(DependencyType::kExtract, bytes, n), 0);
  EXPECT_EQ(DependencyCommBytes(DependencyType::kExtractTranspose, bytes, n),
            0);
  // Situation 2: |A|.
  EXPECT_EQ(DependencyCommBytes(DependencyType::kPartition, bytes, n), bytes);
  EXPECT_EQ(
      DependencyCommBytes(DependencyType::kTransposePartition, bytes, n),
      bytes);
  // Situation 3: N · |A|.
  EXPECT_EQ(DependencyCommBytes(DependencyType::kBroadcast, bytes, n),
            n * bytes);
  EXPECT_EQ(
      DependencyCommBytes(DependencyType::kTransposeBroadcast, bytes, n),
      n * bytes);
}

TEST(DependencyTest, NamesAreStable) {
  EXPECT_STREQ(DependencyTypeName(DependencyType::kReference), "Reference");
  EXPECT_STREQ(DependencyTypeName(DependencyType::kExtractTranspose),
               "Extract-Transpose");
  EXPECT_STREQ(DependencyTypeName(DependencyType::kTransposeBroadcast),
               "Transpose-Broadcast");
}

}  // namespace
}  // namespace dmac
