#include "plan/planner.h"

#include <gtest/gtest.h>

#include <set>

#include "apps/gnmf.h"
#include "apps/linear_regression.h"
#include "apps/pagerank.h"
#include "lang/decompose.h"
#include "lang/program.h"

namespace dmac {
namespace {

Plan MustPlan(const Program& p, PlannerOptions opts) {
  auto ops = Decompose(p);
  EXPECT_TRUE(ops.ok()) << ops.status();
  auto plan = GeneratePlan(*ops, opts);
  EXPECT_TRUE(plan.ok()) << plan.status();
  return *plan;
}

int CountSteps(const Plan& plan, StepKind kind) {
  int n = 0;
  for (const PlanStep& s : plan.steps) n += s.kind == kind;
  return n;
}

PlannerOptions DmacOpts(int workers = 4) {
  PlannerOptions o;
  o.num_workers = workers;
  return o;
}

PlannerOptions SystemMlOpts(int workers = 4) {
  PlannerOptions o;
  o.num_workers = workers;
  o.exploit_dependencies = false;
  return o;
}

// ---- basic structure -----------------------------------------------------

TEST(PlannerTest, SimpleMultiplyPlanIsValid) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {1000, 500}, 0.1);
  Mat b = pb.Load("B", {500, 100}, 1.0);
  Mat c = pb.Var("C");
  pb.Assign(c, a.mm(b));
  pb.Output(c);
  Plan plan = MustPlan(pb.Build(), DmacOpts());
  EXPECT_GE(plan.num_stages, 1);
  ASSERT_EQ(plan.outputs.size(), 1u);
  EXPECT_EQ(plan.outputs[0].variable, "C");
  // Every step's inputs are produced by earlier steps (topological order).
  std::set<int> produced;
  for (const PlanStep& s : plan.steps) {
    for (int in : s.inputs) EXPECT_TRUE(produced.count(in)) << "step " << s.id;
    if (s.output >= 0) produced.insert(s.output);
  }
}

TEST(PlannerTest, StagesAreCutAtCommunication) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {1000, 500}, 0.1);
  Mat b = pb.Load("B", {500, 100}, 1.0);
  Mat c = pb.Var("C");
  pb.Assign(c, a.mm(b));
  pb.Output(c);
  Plan plan = MustPlan(pb.Build(), DmacOpts());
  // Within a stage no step may communicate except the ones that start it:
  // a communicating step's inputs must come from strictly earlier stages.
  for (const PlanStep& s : plan.steps) {
    if (!s.Communicates()) continue;
    for (int in : s.inputs) {
      EXPECT_LT(plan.nodes[static_cast<size_t>(in)].stage, s.stage);
    }
  }
}

TEST(PlannerTest, FlexibleSchemesAllCollapsedAfterFinalize) {
  GnmfConfig config{4000, 3000, 0.05, 50, 2};
  Plan plan = MustPlan(BuildGnmfProgram(config), DmacOpts());
  for (const PlanNode& n : plan.nodes) {
    EXPECT_TRUE(SchemeSetIsSingle(n.schemes)) << n.ToString();
  }
}

// ---- the paper's central claims -------------------------------------------

TEST(PlannerTest, DmacBeatsSystemMlOnGnmfCommunication) {
  GnmfConfig config{480189, 17770, 0.011, 200, 10};
  Program p = BuildGnmfProgram(config);
  Plan dmac = MustPlan(p, DmacOpts());
  Plan sysml = MustPlan(p, SystemMlOpts());
  // Fig. 6(b): an order-of-magnitude gap (paper: ~40GB vs ~1.5GB).
  EXPECT_LT(dmac.total_comm_bytes * 10, sysml.total_comm_bytes);
}

TEST(PlannerTest, GnmfSteadyStateCommunicationIsIterationInvariant) {
  // The communication of iterations 2..n must be identical per iteration —
  // dependencies from the previous iteration are reused, never repaid.
  GnmfConfig c5{100000, 8000, 0.01, 100, 5};
  GnmfConfig c9 = c5;
  c9.iterations = 9;
  const double comm5 = MustPlan(BuildGnmfProgram(c5), DmacOpts())
                           .total_comm_bytes;
  const double comm9 = MustPlan(BuildGnmfProgram(c9), DmacOpts())
                           .total_comm_bytes;
  const double per_iter = (comm9 - comm5) / 4.0;
  GnmfConfig c6 = c5;
  c6.iterations = 6;
  const double comm6 = MustPlan(BuildGnmfProgram(c6), DmacOpts())
                           .total_comm_bytes;
  EXPECT_NEAR(comm6 - comm5, per_iter, per_iter * 0.01 + 1);
}

TEST(PlannerTest, LinRegPartitionsInputOnlyOnce) {
  // §6.5: "the input matrix V only needs to be partitioned once through the
  // whole computation process" — V-sized communication must not recur.
  LinRegConfig config{1000000, 100000, 1e-4, 10, 1e-6};
  Plan plan = MustPlan(BuildLinearRegressionProgram(config), DmacOpts());
  const double v_bytes =
      MatrixStats{{config.examples, config.features}, config.sparsity}
          .EstimatedBytes();
  // Count steps whose traffic is within a factor 2 of |V|.
  int v_scale_moves = 0;
  for (const PlanStep& s : plan.steps) {
    if (s.comm_bytes > v_bytes / 2) ++v_scale_moves;
  }
  EXPECT_LE(v_scale_moves, 1);
}

TEST(PlannerTest, SystemMlRepartitionsLinRegInputEveryIteration) {
  // §6.5: SystemML-S repartitions V (via its transpose) every iteration.
  LinRegConfig config{1000000, 100000, 1e-4, 10, 1e-6};
  Plan plan = MustPlan(BuildLinearRegressionProgram(config), SystemMlOpts());
  const double v_bytes =
      MatrixStats{{config.examples, config.features}, config.sparsity}
          .EstimatedBytes();
  int v_scale_moves = 0;
  for (const PlanStep& s : plan.steps) {
    if (s.comm_bytes > v_bytes / 2) ++v_scale_moves;
  }
  EXPECT_GE(v_scale_moves, config.iterations);
}

TEST(PlannerTest, PageRankBroadcastsOnlyRankVector) {
  // §6.4: with the link matrix cached under its Column scheme, only the
  // (small) rank vector moves each iteration.
  PageRankConfig config{1000000, 1e-5, 10, 0.85};
  Plan plan = MustPlan(BuildPageRankProgram(config), DmacOpts());
  const double link_bytes =
      MatrixStats{{config.nodes, config.nodes}, config.link_sparsity}
          .EstimatedBytes();
  double moved_after_load = 0;
  for (const PlanStep& s : plan.steps) {
    if (s.kind != StepKind::kLoad) moved_after_load += s.comm_bytes;
  }
  // Per-iteration traffic is one broadcast of the rank vector (N·|rank|),
  // and in particular the link matrix never moves again.
  const double rank_bytes = 4.0 * static_cast<double>(config.nodes);
  EXPECT_LE(moved_after_load,
            config.iterations * 4 /*workers*/ * rank_bytes * 1.5);
  EXPECT_LT(moved_after_load, link_bytes * config.iterations / 2);
}

TEST(PlannerTest, PageRankSystemMlMovesLinkEveryIteration) {
  PageRankConfig config{1000000, 1e-5, 10, 0.85};
  Plan plan = MustPlan(BuildPageRankProgram(config), SystemMlOpts());
  const double link_bytes =
      MatrixStats{{config.nodes, config.nodes}, config.link_sparsity}
          .EstimatedBytes();
  double moved_after_load = 0;
  for (const PlanStep& s : plan.steps) {
    if (s.kind != StepKind::kLoad) moved_after_load += s.comm_bytes;
  }
  EXPECT_GT(moved_after_load, link_bytes * (config.iterations - 1));
}

// ---- heuristics -----------------------------------------------------------

TEST(PlannerTest, PullUpBroadcastNeverHurts) {
  GnmfConfig config{50000, 8000, 0.02, 64, 3};
  Program p = BuildGnmfProgram(config);
  PlannerOptions with = DmacOpts();
  PlannerOptions without = DmacOpts();
  without.pull_up_broadcast = false;
  EXPECT_LE(MustPlan(p, with).total_comm_bytes,
            MustPlan(p, without).total_comm_bytes);
}

TEST(PlannerTest, ReassignmentNeverHurts) {
  GnmfConfig config{50000, 8000, 0.02, 64, 3};
  Program p = BuildGnmfProgram(config);
  PlannerOptions without = DmacOpts();
  without.reassignment = false;
  EXPECT_LE(MustPlan(p, DmacOpts()).total_comm_bytes,
            MustPlan(p, without).total_comm_bytes);
}

TEST(PlannerTest, PullUpBroadcastConvertsPartitionToBroadcast) {
  // A is first consumed row-partitioned (costly), then broadcast: H1 must
  // rewrite the partition into a broadcast + extract.
  ProgramBuilder pb;
  Mat a = pb.Load("A", {20000, 20000}, 0.001);
  Mat b = pb.Load("B", {20000, 200}, 1.0);
  Mat x = pb.Var("X");
  // First use: A row-partitioned.
  pb.Assign(x, a.mm(b));        // RMM2 wants A(r)
  Mat y = pb.Var("Y");
  Mat small = pb.Load("S", {200, 20000}, 1.0);
  pb.Assign(y, small.mm(a));    // RMM2 wants A broadcast... (S(r), A(b))
  pb.Output(x);
  pb.Output(y);
  Program p = pb.Build();

  PlannerOptions with = DmacOpts();
  PlannerOptions without = DmacOpts();
  without.pull_up_broadcast = false;
  const double comm_with = MustPlan(p, with).total_comm_bytes;
  const double comm_without = MustPlan(p, without).total_comm_bytes;
  EXPECT_LE(comm_with, comm_without);
}

// ---- cost model accounting -------------------------------------------------

TEST(PlannerTest, TotalCommIsSumOfStepComm) {
  GnmfConfig config{10000, 5000, 0.05, 32, 2};
  Plan plan = MustPlan(BuildGnmfProgram(config), DmacOpts());
  double sum = 0;
  for (const PlanStep& s : plan.steps) sum += s.comm_bytes;
  EXPECT_DOUBLE_EQ(plan.total_comm_bytes, sum);
}

TEST(PlannerTest, OnlyCommunicatingStepsCarryCost) {
  GnmfConfig config{10000, 5000, 0.05, 32, 2};
  Plan plan = MustPlan(BuildGnmfProgram(config), SystemMlOpts());
  for (const PlanStep& s : plan.steps) {
    if (!s.Communicates()) {
      EXPECT_EQ(s.comm_bytes, 0) << StepKindName(s.kind);
    }
  }
}

TEST(PlannerTest, MoreWorkersRaiseBroadcastCost) {
  GnmfConfig config{100000, 8000, 0.01, 100, 3};
  Program p = BuildGnmfProgram(config);
  const double comm4 = MustPlan(p, DmacOpts(4)).total_comm_bytes;
  const double comm20 = MustPlan(p, DmacOpts(20)).total_comm_bytes;
  EXPECT_GT(comm20, comm4);
}

TEST(PlannerTest, ScalarAssignStepsCarrySemantics) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {100, 100}, 0.5);
  Scl s = pb.ScalarVar("s", 2.0);
  pb.Assign(s, (a * a).Sum());
  Mat c = pb.Var("C");
  pb.Assign(c, s * a);
  pb.Output(c);
  pb.OutputScalar(s);
  Plan plan = MustPlan(pb.Build(), DmacOpts());
  EXPECT_GE(CountSteps(plan, StepKind::kReduce), 1);
  EXPECT_GE(CountSteps(plan, StepKind::kScalarAssign), 1);
  ASSERT_EQ(plan.scalar_outputs.size(), 1u);
  EXPECT_EQ(plan.scalar_outputs[0].first, "s");
}

TEST(PlannerTest, BaselineHasMoreStagesThanDmac) {
  GnmfConfig config{480189, 17770, 0.011, 200, 3};
  Program p = BuildGnmfProgram(config);
  EXPECT_LT(MustPlan(p, DmacOpts()).num_stages,
            MustPlan(p, SystemMlOpts()).num_stages);
}

}  // namespace
}  // namespace dmac
