#include "plan/strategy.h"

#include <gtest/gtest.h>

namespace dmac {
namespace {

Operator MakeOp(OpKind kind) {
  Operator op;
  op.kind = kind;
  op.inputs = {{"A", false}, {"B", false}};
  op.output = "C";
  return op;
}

TEST(StrategyTest, MultiplyHasThreeStrategies) {
  auto strategies = CandidateStrategies(MakeOp(OpKind::kMultiply));
  ASSERT_EQ(strategies.size(), 3u);

  // Fig. 2: RMM1 = A(b) × B(c) → AB(c).
  EXPECT_EQ(strategies[0].mult_algo, MultAlgo::kRMM1);
  EXPECT_EQ(strategies[0].input_schemes[0], Scheme::kBroadcast);
  EXPECT_EQ(strategies[0].input_schemes[1], Scheme::kCol);
  EXPECT_EQ(strategies[0].out_schemes, SchemeBit(Scheme::kCol));
  EXPECT_FALSE(strategies[0].output_comm);

  // RMM2 = A(r) × B(b) → AB(r).
  EXPECT_EQ(strategies[1].mult_algo, MultAlgo::kRMM2);
  EXPECT_EQ(strategies[1].input_schemes[0], Scheme::kRow);
  EXPECT_EQ(strategies[1].input_schemes[1], Scheme::kBroadcast);
  EXPECT_EQ(strategies[1].out_schemes, SchemeBit(Scheme::kRow));
  EXPECT_FALSE(strategies[1].output_comm);

  // CPMM = A(c) × B(r) → AB(r|c), with output communication.
  EXPECT_EQ(strategies[2].mult_algo, MultAlgo::kCPMM);
  EXPECT_EQ(strategies[2].input_schemes[0], Scheme::kCol);
  EXPECT_EQ(strategies[2].input_schemes[1], Scheme::kRow);
  EXPECT_EQ(strategies[2].out_schemes,
            SchemeBit(Scheme::kRow) | SchemeBit(Scheme::kCol));
  EXPECT_TRUE(strategies[2].output_comm);
}

TEST(StrategyTest, CellwiseRequiresAlignedSchemes) {
  for (OpKind kind : {OpKind::kAdd, OpKind::kSubtract, OpKind::kCellMultiply,
                      OpKind::kCellDivide}) {
    auto strategies = CandidateStrategies(MakeOp(kind));
    ASSERT_EQ(strategies.size(), 3u);
    for (const Strategy& s : strategies) {
      ASSERT_EQ(s.input_schemes.size(), 2u);
      EXPECT_EQ(s.input_schemes[0], s.input_schemes[1]);
      EXPECT_EQ(s.out_schemes, SchemeBit(s.input_schemes[0]));
      EXPECT_FALSE(s.output_comm);
    }
  }
}

TEST(StrategyTest, ScalarOpsPreserveScheme) {
  for (OpKind kind : {OpKind::kScalarMultiply, OpKind::kScalarAdd}) {
    Operator op = MakeOp(kind);
    op.inputs = {{"A", false}};
    auto strategies = CandidateStrategies(op);
    ASSERT_EQ(strategies.size(), 3u);
    for (const Strategy& s : strategies) {
      ASSERT_EQ(s.input_schemes.size(), 1u);
      EXPECT_EQ(s.out_schemes, SchemeBit(s.input_schemes[0]));
    }
  }
}

TEST(StrategyTest, ReduceAcceptsAnySchemeNoOutput) {
  Operator op = MakeOp(OpKind::kReduce);
  op.inputs = {{"A", false}};
  auto strategies = CandidateStrategies(op);
  ASSERT_EQ(strategies.size(), 3u);
  for (const Strategy& s : strategies) {
    EXPECT_EQ(s.out_schemes, kNoSchemes);
  }
}

TEST(StrategyTest, LeavesOfferAllThreeSchemes) {
  for (OpKind kind : {OpKind::kLoad, OpKind::kRandom}) {
    Operator op = MakeOp(kind);
    op.inputs.clear();
    auto strategies = CandidateStrategies(op);
    ASSERT_EQ(strategies.size(), 3u);
    SchemeSet seen = kNoSchemes;
    for (const Strategy& s : strategies) seen |= s.out_schemes;
    EXPECT_EQ(seen, SchemeBit(Scheme::kRow) | SchemeBit(Scheme::kCol) |
                        SchemeBit(Scheme::kBroadcast));
  }
}

TEST(StrategyTest, ScalarAssignHasNoStrategies) {
  Operator op = MakeOp(OpKind::kScalarAssign);
  EXPECT_TRUE(CandidateStrategies(op).empty());
}

TEST(StrategyTest, ToStringIsReadable) {
  auto strategies = CandidateStrategies(MakeOp(OpKind::kMultiply));
  EXPECT_EQ(strategies[0].ToString(), "{b,c}->c (RMM1)");
  EXPECT_EQ(strategies[2].ToString(), "{c,r}->r|c (CPMM)");
}

}  // namespace
}  // namespace dmac
