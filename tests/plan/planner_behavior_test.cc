// Behavior tests for the planner's finer mechanisms: strategy selection per
// shape regime, lookahead tie-breaking, Pull-Up Broadcast on loads,
// Re-assignment of flexible outputs, and the baseline's repartition
// pathology the paper describes in §6.5.
#include <gtest/gtest.h>

#include "apps/gnmf.h"
#include "lang/decompose.h"
#include "plan/planner.h"

namespace dmac {
namespace {

Plan MustPlan(const Program& p, PlannerOptions opts) {
  auto ops = Decompose(p);
  EXPECT_TRUE(ops.ok()) << ops.status();
  auto plan = GeneratePlan(*ops, opts);
  EXPECT_TRUE(plan.ok()) << plan.status();
  return *plan;
}

const PlanStep* FindMultiply(const Plan& plan, size_t index = 0) {
  size_t seen = 0;
  for (const PlanStep& s : plan.steps) {
    if (s.kind == StepKind::kCompute && s.op_kind == OpKind::kMultiply) {
      if (seen++ == index) return &s;
    }
  }
  return nullptr;
}

TEST(PlannerBehaviorTest, BroadcastsTheSmallSide) {
  // big (1e6 x 1e4, sparse) times small (1e4 x 50, dense): RMM2 broadcasts
  // the small right operand; broadcasting the big side or CPMM-shuffling
  // the output would cost more.
  ProgramBuilder pb;
  Mat big = pb.Load("big", {1000000, 10000}, 1e-4);
  Mat small = pb.Load("small", {10000, 50}, 1.0);
  Mat c = pb.Var("C");
  pb.Assign(c, big.mm(small));
  pb.Output(c);
  Plan plan = MustPlan(pb.Build(), PlannerOptions{});
  const PlanStep* mul = FindMultiply(plan);
  ASSERT_NE(mul, nullptr);
  EXPECT_EQ(mul->mult_algo, MultAlgo::kRMM2);
}

TEST(PlannerBehaviorTest, GramProductUsesCpmm) {
  // tall Aᵀ·A with a tiny k×k output: CPMM's N·|C| beats broadcasting
  // either tall operand.
  ProgramBuilder pb;
  Mat a = pb.Load("A", {2000000, 100}, 1.0);
  Mat g = pb.Var("G");
  pb.Assign(g, a.t().mm(a));
  pb.Output(g);
  Plan plan = MustPlan(pb.Build(), PlannerOptions{});
  const PlanStep* mul = FindMultiply(plan);
  ASSERT_NE(mul, nullptr);
  EXPECT_EQ(mul->mult_algo, MultAlgo::kCPMM);
}

TEST(PlannerBehaviorTest, LoadSchemeServesTheConsumer) {
  // V is only ever consumed row-partitioned (RMM2's A input). The load's
  // r-vs-c cost tie must break toward Row via consumer lookahead.
  ProgramBuilder pb;
  Mat v = pb.Load("V", {500000, 20000}, 1e-3);
  Mat w = pb.Random("w", {20000, 1});
  Mat c = pb.Var("C");
  pb.Assign(c, v.mm(w));
  pb.Output(c);
  Plan plan = MustPlan(pb.Build(), PlannerOptions{});
  for (const PlanStep& s : plan.steps) {
    if (s.kind == StepKind::kLoad && s.source == "V") {
      EXPECT_EQ(plan.nodes[static_cast<size_t>(s.output)].scheme(),
                Scheme::kRow);
    }
  }
  // And no repartition of V follows.
  for (const PlanStep& s : plan.steps) {
    if (s.kind == StepKind::kPartition) {
      EXPECT_NE(plan.nodes[static_cast<size_t>(s.output)].matrix, "V#1");
    }
  }
}

TEST(PlannerBehaviorTest, PullUpBroadcastRewritesLoads) {
  // B is consumed r/c first, then needed broadcast: Heuristic 1 must turn
  // the load itself into a broadcast-load plus a local extract, paying
  // N·|B| once instead of |B| + N·|B|.
  ProgramBuilder pb;
  Mat a = pb.Load("A", {100000, 5000}, 1e-3);
  Mat b = pb.Load("B", {5000, 200}, 1.0);
  Mat x = pb.Var("X");
  pb.Assign(x, a.mm(b));          // consumes B broadcast (RMM2)
  Mat g = pb.Var("G");
  pb.Assign(g, b.t().mm(b));      // consumes B again
  pb.Output(x);
  pb.Output(g);
  Plan plan = MustPlan(pb.Build(), PlannerOptions{});

  // The load of B must produce a Broadcast node directly, with an extract
  // hanging off it rather than a separate broadcast step.
  bool b_load_is_broadcast = false;
  for (const PlanStep& s : plan.steps) {
    if (s.kind == StepKind::kLoad && s.source == "B") {
      b_load_is_broadcast =
          plan.nodes[static_cast<size_t>(s.output)].scheme() ==
          Scheme::kBroadcast;
    }
  }
  EXPECT_TRUE(b_load_is_broadcast);
}

TEST(PlannerBehaviorTest, ReassignmentStefersCpmmOutput) {
  // G = AᵀA via CPMM (flexible r|c); the consumer G %*% B wants... whatever
  // it wants, no partition step of G may appear: Heuristic 2 collapses the
  // flexible output to the consumer's requirement.
  ProgramBuilder pb;
  Mat a = pb.Load("A", {1000000, 300}, 1e-3);
  Mat g = pb.Var("G");
  pb.Assign(g, a.t().mm(a));
  Mat h = pb.Random("H", {300, 40000});
  Mat c = pb.Var("C");
  pb.Assign(c, g.mm(h));
  pb.Output(c);
  Plan plan = MustPlan(pb.Build(), PlannerOptions{});
  for (const PlanStep& s : plan.steps) {
    if (s.kind == StepKind::kPartition) {
      const PlanNode& node = plan.nodes[static_cast<size_t>(s.output)];
      EXPECT_NE(node.matrix, "G#1")
          << "flexible CPMM output was repartitioned";
    }
  }
}

TEST(PlannerBehaviorTest, BaselineRepartitionsWFourTimesPerIteration) {
  // §6.5: "W will be partitioned four times since there are four references
  // in each iteration" in SystemML-S. Count W-sized repartitions per
  // GNMF iteration in baseline mode.
  Program p = BuildGnmfProgram({480189, 17770, 0.011, 200, 2});
  PlannerOptions opts;
  opts.exploit_dependencies = false;
  Plan plan = MustPlan(p, opts);

  const double w_bytes = MatrixStats{{480189, 200}, 1.0}.EstimatedBytes();
  int w_moves = 0;
  for (const PlanStep& s : plan.steps) {
    // Count communication steps moving exactly a W-sized dense matrix.
    if ((s.kind == StepKind::kPartition || s.kind == StepKind::kBroadcast) &&
        s.comm_bytes >= w_bytes && s.comm_bytes <= 4 * w_bytes) {
      const PlanNode& node = plan.nodes[static_cast<size_t>(s.output)];
      if (node.stats.shape.NumElements() == 480189 * 200) ++w_moves;
    }
  }
  // Four W references per iteration, two iterations.
  EXPECT_GE(w_moves, 6);

  // DMac never moves W after its creation.
  Plan dmac_plan = MustPlan(p, PlannerOptions{});
  int dmac_w_moves = 0;
  for (const PlanStep& s : dmac_plan.steps) {
    if ((s.kind == StepKind::kPartition || s.kind == StepKind::kBroadcast) &&
        s.output >= 0) {
      const PlanNode& node =
          dmac_plan.nodes[static_cast<size_t>(s.output)];
      if (node.stats.shape.NumElements() == 480189 * 200) ++dmac_w_moves;
    }
  }
  EXPECT_EQ(dmac_w_moves, 0);
}

TEST(PlannerBehaviorTest, BaselineIgnoresHeuristics) {
  // Toggling the heuristics must not change a SystemML-S plan.
  Program p = BuildGnmfProgram({100000, 8000, 0.01, 64, 2});
  PlannerOptions base;
  base.exploit_dependencies = false;
  PlannerOptions no_heuristics = base;
  no_heuristics.pull_up_broadcast = false;
  no_heuristics.reassignment = false;
  EXPECT_DOUBLE_EQ(MustPlan(p, base).total_comm_bytes,
                   MustPlan(p, no_heuristics).total_comm_bytes);
}

TEST(PlannerBehaviorTest, LookaheadDepthZeroStillPlansValidly) {
  Program p = BuildGnmfProgram({50000, 5000, 0.01, 32, 2});
  PlannerOptions opts;
  opts.lookahead_edges = 0;
  Plan plan = MustPlan(p, opts);
  EXPECT_GT(plan.steps.size(), 0u);
  // Lookahead only breaks ties; disabling it may cost more, never less
  // planning validity.
  PlannerOptions with;
  EXPECT_LE(MustPlan(p, with).total_comm_bytes,
            plan.total_comm_bytes * 1.001);
}

}  // namespace
}  // namespace dmac
