// Calibrated cost model: table parsing and fallback, rate lookup, and the
// plan estimate's structural invariants (step sum = plan total, comm bytes
// match the planner's Equation-1 accounting, byte-cost mode reproduces the
// paper's ordering with zero compute terms).
#include "plan/costmodel.h"

#include <gtest/gtest.h>

#include "lang/decompose.h"
#include "lang/program.h"
#include "plan/planner.h"

namespace dmac {
namespace {

Plan MustPlan(const Program& p, PlannerOptions opts = {}) {
  auto ops = Decompose(p);
  EXPECT_TRUE(ops.ok()) << ops.status();
  auto plan = GeneratePlan(*ops, opts);
  EXPECT_TRUE(plan.ok()) << plan.status();
  return *plan;
}

Program SmallChain() {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {4000, 2000}, 0.01);
  Mat b = pb.Load("B", {2000, 64}, 1.0);
  Mat c = pb.Var("C");
  pb.Assign(c, a.mm(b));
  pb.Output(c);
  return pb.Build();
}

TEST(CalibrationTableTest, BuiltinHasGemmAndVecRates) {
  CalibrationTable t = CalibrationTable::Builtin();
  EXPECT_FALSE(t.byte_cost_only());
  EXPECT_EQ(t.source(), "builtin");
  EXPECT_GT(t.num_entries(), 0u);
  EXPECT_GT(t.Lookup("gemm", "dense_dense", "nn", 256).gflops, 0.0);
  EXPECT_GT(t.Lookup("gemm", "sparse_dense", "nn", 256).gflops, 0.0);
  EXPECT_GT(t.Lookup("vec", "sum", "", 256).bytes_per_second, 0.0);
}

TEST(CalibrationTableTest, LookupPrefersExactRepresentationAndTrans) {
  CalibrationTable t;
  t.Add("gemm", "dense_dense", "nn", 256, 1, {8.0, 0.0});
  t.Add("gemm", "dense_dense", "nt", 256, 1, {16.0, 0.0});
  t.Add("gemm", "sparse_dense", "nn", 256, 1, {1.0, 0.0});
  EXPECT_DOUBLE_EQ(t.Lookup("gemm", "dense_dense", "nt", 256).gflops, 16.0);
  EXPECT_DOUBLE_EQ(t.Lookup("gemm", "sparse_dense", "nn", 256).gflops, 1.0);
  // Unknown representation falls back to some rate of the kind, not zero.
  EXPECT_GT(t.Lookup("gemm", "sparse_sparse", "nn", 256).gflops, 0.0);
  // Unknown kind is a zero rate (caller treats as "no estimate").
  EXPECT_DOUBLE_EQ(t.Lookup("fft", "dense_dense", "nn", 256).gflops, 0.0);
}

TEST(CalibrationTableTest, LookupPicksNearestBlockSize) {
  CalibrationTable t;
  t.Add("gemm", "dense_dense", "nn", 64, 1, {4.0, 0.0});
  t.Add("gemm", "dense_dense", "nn", 512, 1, {32.0, 0.0});
  EXPECT_DOUBLE_EQ(t.Lookup("gemm", "dense_dense", "nn", 64).gflops, 4.0);
  EXPECT_DOUBLE_EQ(t.Lookup("gemm", "dense_dense", "nn", 1024).gflops, 32.0);
}

TEST(CalibrationTableTest, ParsesCalibrationV1Document) {
  const char* doc = R"({
    "schema": "dmac-calibration-v1",
    "default_block_size": 256,
    "entries": [
      {"kind": "gemm", "representation": "dense_dense", "trans": "nn",
       "block_size": 256, "threads": 1,
       "gflops": 12.5, "bytes_per_second": 0.0},
      {"kind": "vec", "representation": "sum", "trans": "",
       "block_size": 256, "threads": 1,
       "gflops": 0.0, "bytes_per_second": 9.0e9}
    ]})";
  auto t = CalibrationTable::Parse(doc, "test");
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->num_entries(), 2u);
  EXPECT_DOUBLE_EQ(t->Lookup("gemm", "dense_dense", "nn", 256).gflops, 12.5);
  EXPECT_DOUBLE_EQ(t->Lookup("vec", "sum", "", 256).bytes_per_second, 9.0e9);
}

TEST(CalibrationTableTest, ParsesKernelBenchV2AndSkipsSeedReference) {
  const char* doc = R"({
    "schema": "dmac-kernel-bench-v2",
    "entries": [
      {"kind": "gemm_seed_reference", "representation": "dense_dense",
       "trans": "nn", "block_size": 256, "threads": 1,
       "gflops": 2.9, "bytes_per_second": 0.0},
      {"kind": "gemm", "representation": "dense_dense", "trans": "nn",
       "block_size": 256, "threads": 1,
       "gflops": 15.0, "bytes_per_second": 0.0}
    ]})";
  auto t = CalibrationTable::Parse(doc, "bench");
  ASSERT_TRUE(t.ok()) << t.status();
  // The seed-reference row documents speedup; it must not become a rate.
  EXPECT_EQ(t->num_entries(), 1u);
  EXPECT_DOUBLE_EQ(t->Lookup("gemm", "dense_dense", "nn", 256).gflops, 15.0);
}

TEST(CalibrationTableTest, RejectsUnknownSchemaAndEmptyEntries) {
  EXPECT_FALSE(CalibrationTable::Parse(R"({"schema":"v9","entries":[{}]})",
                                       "x")
                   .ok());
  EXPECT_FALSE(
      CalibrationTable::Parse(
          R"({"schema":"dmac-calibration-v1","entries":[]})", "x")
          .ok());
  EXPECT_FALSE(CalibrationTable::Parse("not json", "x").ok());
}

TEST(CalibrationTableTest, UnreadablePathFallsBackToByteCost) {
  auto t = CalibrationTable::Load("/nonexistent/calibration.json");
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_TRUE(t->byte_cost_only());
  EXPECT_EQ(t->source(), "byte-cost");
}

TEST(CostModelTest, PlanEstimateSumsItsSteps) {
  Plan plan = MustPlan(SmallChain());
  CostModel model(CalibrationTable::Builtin(), CostModelOptions{});
  PlanCost cost = model.EstimatePlan(plan);
  ASSERT_EQ(cost.steps.size(), plan.steps.size());
  double compute = 0, comm_s = 0, comm_b = 0;
  for (const StepCost& s : cost.steps) {
    compute += s.compute_seconds;
    comm_s += s.comm_seconds;
    comm_b += s.comm_bytes;
  }
  EXPECT_NEAR(cost.compute_seconds, compute, 1e-12);
  EXPECT_NEAR(cost.comm_seconds, comm_s, 1e-9);
  EXPECT_NEAR(cost.comm_bytes, comm_b, 1e-6);
  EXPECT_GT(cost.seconds(), 0.0);
}

TEST(CostModelTest, CommBytesMatchThePlannersAccounting) {
  // The model prices the §4.1 bytes the planner already attached to each
  // step — it must not re-derive (and diverge from) Equation 1.
  Plan plan = MustPlan(SmallChain());
  CostModel model(CalibrationTable::Builtin(), CostModelOptions{});
  EXPECT_NEAR(model.EstimatePlan(plan).comm_bytes, plan.total_comm_bytes,
              1e-6);
}

TEST(CostModelTest, ByteCostModeHasZeroComputeTerms) {
  CalibrationTable byte_cost = *CalibrationTable::Load("/nonexistent.json");
  CostModel model(std::move(byte_cost), CostModelOptions{});
  PlanCost cost = model.EstimatePlan(MustPlan(SmallChain()));
  EXPECT_DOUBLE_EQ(cost.compute_seconds, 0.0);
  EXPECT_GT(cost.comm_seconds, 0.0);
}

TEST(CostModelTest, MoreWorkersReduceComputeSeconds) {
  Plan plan = MustPlan(SmallChain());
  CostModelOptions few;
  few.num_workers = 1;
  few.threads_per_worker = 1;
  CostModelOptions many;
  many.num_workers = 8;
  many.threads_per_worker = 2;
  const double t_few =
      CostModel(CalibrationTable::Builtin(), few).EstimatePlan(plan)
          .compute_seconds;
  const double t_many =
      CostModel(CalibrationTable::Builtin(), many).EstimatePlan(plan)
          .compute_seconds;
  EXPECT_GT(t_few, 0.0);
  EXPECT_LT(t_many, t_few);
}

}  // namespace
}  // namespace dmac
