#include "plan/plan_dot.h"

#include <gtest/gtest.h>

#include "apps/gnmf.h"
#include "lang/decompose.h"
#include "plan/planner.h"

namespace dmac {
namespace {

Plan GnmfPlan() {
  Program p = BuildGnmfProgram({1000, 800, 0.1, 16, 1});
  auto ops = Decompose(p);
  EXPECT_TRUE(ops.ok());
  auto plan = GeneratePlan(*ops, PlannerOptions{});
  EXPECT_TRUE(plan.ok());
  return *plan;
}

TEST(PlanDotTest, ProducesWellFormedDigraph) {
  const std::string dot = PlanToDot(GnmfPlan());
  EXPECT_EQ(dot.rfind("digraph plan {", 0), 0u);
  EXPECT_EQ(dot.back(), '\n');
  EXPECT_NE(dot.find("}\n"), std::string::npos);
  // Balanced braces.
  int depth = 0;
  for (char c : dot) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(PlanDotTest, EveryNodeAndStageAppears) {
  Plan plan = GnmfPlan();
  const std::string dot = PlanToDot(plan);
  for (const PlanNode& node : plan.nodes) {
    EXPECT_NE(dot.find("n" + std::to_string(node.id) + " "),
              std::string::npos)
        << node.ToString();
  }
  for (int s = 1; s <= plan.num_stages; ++s) {
    EXPECT_NE(dot.find("cluster_stage" + std::to_string(s)),
              std::string::npos);
  }
}

TEST(PlanDotTest, CommunicationEdgesHighlighted) {
  const std::string dot = PlanToDot(GnmfPlan());
  EXPECT_NE(dot.find("color=red"), std::string::npos);
}

TEST(PlanDotTest, SchemeAnnotationsPresent) {
  const std::string dot = PlanToDot(GnmfPlan());
  // Fig. 3 style labels like V#1(r) / ...(b).
  EXPECT_NE(dot.find("(r)"), std::string::npos);
  EXPECT_NE(dot.find("(b)"), std::string::npos);
}

}  // namespace
}  // namespace dmac
