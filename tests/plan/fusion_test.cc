// Transpose-fusion pass tests (plan/fusion.h): materialized kTranspose
// steps feeding only multiplies fold into TransA/TransB kernel flags. The
// fused plan must be structurally smaller, verifier-clean, and — checked
// end-to-end in tests/runtime/engine_transpose_test.cc — numerically
// identical to the unfused one.
#include "plan/fusion.h"

#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "apps/gnmf.h"
#include "lang/decompose.h"
#include "plan/footprint.h"
#include "plan/planner.h"

namespace dmac {
namespace {

OperatorList MustDecompose(const Program& p) {
  auto ops = Decompose(p);
  EXPECT_TRUE(ops.ok()) << ops.status();
  return *ops;
}

Plan MustPlan(const OperatorList& ops, bool fuse) {
  PlannerOptions opts;
  opts.num_workers = 4;
  opts.fuse_transposes = fuse;
  opts.verify_plan = true;  // fused plans must satisfy the static verifier
  auto plan = GeneratePlan(ops, opts);
  EXPECT_TRUE(plan.ok()) << plan.status();
  return *plan;
}

int CountTransposes(const Plan& plan) {
  int n = 0;
  for (const PlanStep& s : plan.steps) {
    if (s.kind == StepKind::kTranspose) ++n;
  }
  return n;
}

int CountFlaggedMultiplies(const Plan& plan) {
  int n = 0;
  for (const PlanStep& s : plan.steps) {
    if (s.trans_a || s.trans_b) ++n;
  }
  return n;
}

/// Aᵀ·B with a tall A: the planner materializes Aᵀ as a kTranspose, which
/// fusion must fold into the multiply's trans_a flag.
Program GramProgram() {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {200000, 100}, 1.0);
  Mat g = pb.Var("G");
  pb.Assign(g, a.t().mm(a));
  pb.Output(g);
  return pb.Build();
}

TEST(TransposeFusionTest, GramTransposeFoldsIntoOperandFlag) {
  const OperatorList ops = MustDecompose(GramProgram());
  const Plan fused = MustPlan(ops, /*fuse=*/true);
  const Plan unfused = MustPlan(ops, /*fuse=*/false);

  EXPECT_GT(CountTransposes(unfused), 0);
  EXPECT_EQ(CountTransposes(fused), 0);
  EXPECT_GT(CountFlaggedMultiplies(fused), 0);
  EXPECT_EQ(CountFlaggedMultiplies(unfused), 0);
  EXPECT_LT(fused.steps.size(), unfused.steps.size());

  // Dropping the materialized transpose shrinks the plan's peak-memory
  // estimate and never adds communication.
  EXPECT_LT(EstimatePlanFootprintBytes(fused, 4),
            EstimatePlanFootprintBytes(unfused, 4));
  EXPECT_LE(fused.total_comm_bytes, unfused.total_comm_bytes);
}

TEST(TransposeFusionTest, FusedPlanPassesStaticVerifier) {
  const OperatorList ops = MustDecompose(GramProgram());
  const Plan fused = MustPlan(ops, /*fuse=*/true);
  EXPECT_TRUE(VerifyPlan(ops, fused, 4).ok());
}

TEST(TransposeFusionTest, GnmfSteadyStateFusesFactorTransposes) {
  // §6.2: each GNMF iteration computes WᵀV, WᵀW, and V·Hᵀ / H·Hᵀ. With
  // fusion on, the CPMM products read W through trans_a and the
  // re-derivation transpose steps disappear.
  Program p = BuildGnmfProgram({480189, 17770, 0.011, 200, 2});
  const OperatorList ops = MustDecompose(p);
  const Plan fused = MustPlan(ops, /*fuse=*/true);
  const Plan unfused = MustPlan(ops, /*fuse=*/false);

  EXPECT_LT(CountTransposes(fused), CountTransposes(unfused));
  EXPECT_LT(fused.steps.size(), unfused.steps.size());
  EXPECT_EQ(fused.total_comm_bytes, unfused.total_comm_bytes);
  // GNMF's footprint peak is V plus the W replicas, which fusion does not
  // touch — the estimate must not grow (the strict decrease is asserted on
  // the Gram plan, where the transpose is the large object).
  EXPECT_LE(EstimatePlanFootprintBytes(fused, 4),
            EstimatePlanFootprintBytes(unfused, 4));

  bool cpmm_flagged = false;
  for (const PlanStep& s : fused.steps) {
    if (s.mult_algo == MultAlgo::kCPMM && s.trans_a) cpmm_flagged = true;
  }
  EXPECT_TRUE(cpmm_flagged) << "WᵀV should read W through trans_a";
}

TEST(TransposeFusionTest, MultiConsumerTransposeFusesIntoEachMultiply) {
  // One Aᵀ feeding two multiplies: the fold retargets both consumers.
  ProgramBuilder pb;
  Mat a = pb.Load("A", {100000, 80}, 1.0);
  Mat b = pb.Load("B", {100000, 40}, 1.0);
  Mat g = pb.Var("G");
  Mat h = pb.Var("H");
  pb.Assign(g, a.t().mm(a));
  pb.Assign(h, a.t().mm(b));
  pb.Output(g);
  pb.Output(h);
  const OperatorList ops = MustDecompose(pb.Build());
  const Plan fused = MustPlan(ops, /*fuse=*/true);
  EXPECT_EQ(CountTransposes(fused), 0);
  EXPECT_EQ(CountFlaggedMultiplies(fused), 2);
}

TEST(TransposeFusionTest, TransposedOutputsSurviveTheFold) {
  // BindOutputs() resolves a transposed output variable to the *source*
  // node plus a gather-side transposed flag — it never reads the
  // materialized Aᵀ node. The fold may therefore delete the transpose
  // step, and the output binding must still resolve to a live node.
  ProgramBuilder pb;
  Mat a = pb.Load("A", {100000, 80}, 1.0);
  Mat t = pb.Var("T");
  Mat m = pb.Var("M");
  pb.Assign(t, a.t());
  pb.Assign(m, t.mm(a));
  pb.Output(t);
  pb.Output(m);
  const OperatorList ops = MustDecompose(pb.Build());
  const Plan fused = MustPlan(ops, /*fuse=*/true);
  EXPECT_EQ(CountTransposes(fused), 0);
  EXPECT_EQ(CountFlaggedMultiplies(fused), 1);
  ASSERT_EQ(fused.outputs.size(), 2u);
  for (const PlanOutput& out : fused.outputs) {
    ASSERT_GE(out.node, 0);
    ASSERT_LT(out.node, static_cast<int>(fused.nodes.size()));
    if (out.variable == "T") {
      EXPECT_TRUE(out.transposed);
    }
  }
}

TEST(TransposeFusionTest, NonMultiplyConsumerBlocksTheFold) {
  // Aᵀ consumed by a cell-wise add must stay materialized even if it also
  // feeds a multiply.
  ProgramBuilder pb;
  Mat a = pb.Load("A", {2000, 2000}, 1.0);
  Mat b = pb.Load("B", {2000, 2000}, 1.0);
  Mat s = pb.Var("S");
  Mat m = pb.Var("M");
  pb.Assign(s, a.t() + b);
  pb.Assign(m, a.t().mm(b));
  pb.Output(s);
  pb.Output(m);
  const OperatorList ops = MustDecompose(pb.Build());
  const Plan fused = MustPlan(ops, /*fuse=*/true);
  // The cell-wise consumer pins at least one materialized transpose.
  EXPECT_GT(CountTransposes(fused), 0);
}

TEST(TransposeFusionTest, FusedStepsRenumberContiguously) {
  // Finalize() requires node id == index and step ids dense; fusion's
  // compaction must preserve both.
  const OperatorList ops = MustDecompose(GramProgram());
  const Plan fused = MustPlan(ops, /*fuse=*/true);
  for (size_t i = 0; i < fused.nodes.size(); ++i) {
    EXPECT_EQ(fused.nodes[i].id, static_cast<int>(i));
  }
  for (size_t i = 0; i < fused.steps.size(); ++i) {
    EXPECT_EQ(fused.steps[i].id, static_cast<int>(i));
    for (int in : fused.steps[i].inputs) {
      ASSERT_GE(in, 0);
      ASSERT_LT(in, static_cast<int>(fused.nodes.size()));
    }
  }
}

}  // namespace
}  // namespace dmac
