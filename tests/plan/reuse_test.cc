// Operand-reuse marking tests (plan/reuse.h): the pass must flag exactly
// the Aᵀ·B multiplies whose sparse B node feeds at least two distinct
// steps, and the footprint pass (plan/footprint.h) must charge the cached
// conversion only for flagged operands.
#include "plan/reuse.h"

#include <gtest/gtest.h>

#include "lang/decompose.h"
#include "plan/footprint.h"
#include "plan/planner.h"

namespace dmac {
namespace {

OperatorList MustDecompose(const Program& p) {
  auto ops = Decompose(p);
  EXPECT_TRUE(ops.ok()) << ops.status();
  return *ops;
}

Plan MustPlan(const OperatorList& ops) {
  PlannerOptions opts;
  opts.num_workers = 4;
  opts.fuse_transposes = true;  // the pass keys off fused trans_a flags
  auto plan = GeneratePlan(ops, opts);
  EXPECT_TRUE(plan.ok()) << plan.status();
  return *plan;
}

int CountCacheMarked(const Plan& plan) {
  int n = 0;
  for (const PlanStep& s : plan.steps) {
    if (s.cache_csr_b) ++n;
  }
  return n;
}

/// Two Gram-style products reading the same sparse B: Aᵀ·B and Cᵀ·B.
Program SharedSparseB(double density) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {40000, 300}, density);
  Mat b = pb.Load("B", {40000, 200}, density);
  Mat c = pb.Load("C", {40000, 100}, density);
  Mat g = pb.Var("G");
  Mat h = pb.Var("H");
  pb.Assign(g, a.t().mm(b));
  pb.Assign(h, c.t().mm(b));
  pb.Output(g);
  pb.Output(h);
  return pb.Build();
}

TEST(ReuseMarkTest, SharedSparseOperandMarksBothMultiplies) {
  const Plan plan = MustPlan(MustDecompose(SharedSparseB(0.01)));
  EXPECT_EQ(CountCacheMarked(plan), 2);
  // The hint must survive into the step listing the executor reads.
  EXPECT_NE(plan.ToString().find(":CacheB"), std::string::npos);
}

TEST(ReuseMarkTest, DenseOperandsNeverMarked) {
  // Same program shape, dense loads: the cache only serves sparse×sparse,
  // so marking would charge the footprint for a conversion that never
  // happens (the Gram fusion regression).
  const Plan plan = MustPlan(MustDecompose(SharedSparseB(1.0)));
  EXPECT_EQ(CountCacheMarked(plan), 0);
  EXPECT_EQ(plan.ToString().find(":CacheB"), std::string::npos);
}

TEST(ReuseMarkTest, SingleConsumerStaysUnmarked) {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {40000, 300}, 0.01);
  Mat b = pb.Load("B", {40000, 200}, 0.01);
  Mat g = pb.Var("G");
  pb.Assign(g, a.t().mm(b));
  pb.Output(g);
  const Plan plan = MustPlan(MustDecompose(pb.Build()));
  EXPECT_EQ(CountCacheMarked(plan), 0);
}

TEST(ReuseMarkTest, SparseGramSelfProductStaysUnmarked) {
  // Aᵀ·A reads its node twice from one step; that is not reuse — the step
  // pays one conversion either way.
  ProgramBuilder pb;
  Mat a = pb.Load("A", {40000, 300}, 0.01);
  Mat g = pb.Var("G");
  pb.Assign(g, a.t().mm(a));
  pb.Output(g);
  const Plan plan = MustPlan(MustDecompose(pb.Build()));
  EXPECT_EQ(CountCacheMarked(plan), 0);
}

TEST(ReuseMarkTest, MarkingIsIdempotent) {
  Plan plan = MustPlan(MustDecompose(SharedSparseB(0.01)));
  const int before = CountCacheMarked(plan);
  const ReuseMarkResult again = MarkOperandReuse(&plan);
  EXPECT_EQ(again.marked_steps, before);  // same steps qualify again
  EXPECT_EQ(CountCacheMarked(plan), before);
}

TEST(ReuseMarkTest, FootprintChargesCachedConversionDouble) {
  Plan marked = MustPlan(MustDecompose(SharedSparseB(0.01)));
  ASSERT_GT(CountCacheMarked(marked), 0);

  Plan unmarked = marked;
  for (PlanStep& s : unmarked.steps) s.cache_csr_b = false;

  const int64_t with_cache = EstimatePlanFootprintBytes(marked, 4);
  const int64_t without = EstimatePlanFootprintBytes(unmarked, 4);
  EXPECT_GT(with_cache, without)
      << "resident converted copy must show up in the estimate";
}

}  // namespace
}  // namespace dmac
