// Plan::Finalize() invariants: topological ordering, stage assignment,
// flexible-scheme collapse, and cycle detection on hand-built plans.
#include <gtest/gtest.h>

#include "plan/plan.h"

namespace dmac {
namespace {

int AddNode(Plan* plan, const std::string& name, SchemeSet schemes) {
  PlanNode node;
  node.id = static_cast<int>(plan->nodes.size());
  node.matrix = name;
  node.schemes = schemes;
  node.stats = {{16, 16}, 1.0};
  plan->nodes.push_back(node);
  return node.id;
}

PlanStep& AddStep(Plan* plan, StepKind kind, std::vector<int> inputs,
                  int output) {
  PlanStep step;
  step.id = static_cast<int>(plan->steps.size());
  step.kind = kind;
  step.inputs = std::move(inputs);
  step.output = output;
  if (kind == StepKind::kLoad) {
    step.source = "X";
    step.decl_shape = {16, 16};
  }
  plan->steps.push_back(std::move(step));
  return plan->steps.back();
}

TEST(PlanFinalizeTest, ReordersStepsTopologically) {
  Plan plan;
  const int a = AddNode(&plan, "A", SchemeBit(Scheme::kRow));
  const int b = AddNode(&plan, "B", SchemeBit(Scheme::kRow));
  const int c = AddNode(&plan, "C", SchemeBit(Scheme::kRow));
  // Steps inserted out of order: consumer before producer.
  PlanStep& mul = AddStep(&plan, StepKind::kCompute, {a, b}, c);
  mul.op_kind = OpKind::kCellMultiply;
  AddStep(&plan, StepKind::kLoad, {}, a);
  AddStep(&plan, StepKind::kLoad, {}, b);

  ASSERT_TRUE(plan.Finalize().ok());
  // After finalize, every input precedes its consumer.
  std::vector<bool> produced(plan.nodes.size(), false);
  for (const PlanStep& s : plan.steps) {
    for (int in : s.inputs) EXPECT_TRUE(produced[static_cast<size_t>(in)]);
    if (s.output >= 0) produced[static_cast<size_t>(s.output)] = true;
  }
}

TEST(PlanFinalizeTest, StagesStartAtCommunication) {
  Plan plan;
  const int a = AddNode(&plan, "A", SchemeBit(Scheme::kRow));
  const int b = AddNode(&plan, "B", SchemeBit(Scheme::kCol));
  const int c = AddNode(&plan, "C", SchemeBit(Scheme::kCol));
  AddStep(&plan, StepKind::kLoad, {}, a);       // comm: stage 1
  AddStep(&plan, StepKind::kPartition, {a}, b)  // comm: stage 2
      .comm_bytes = 128;
  PlanStep& local = AddStep(&plan, StepKind::kTranspose, {b}, c);  // stage 2
  ASSERT_TRUE(plan.Finalize().ok());
  EXPECT_EQ(plan.steps[0].stage, 1);
  EXPECT_EQ(plan.steps[1].stage, 2);
  EXPECT_EQ(plan.steps[2].stage, 2);
  EXPECT_EQ(plan.num_stages, 2);
  EXPECT_DOUBLE_EQ(plan.total_comm_bytes, 128);
  (void)local;
}

TEST(PlanFinalizeTest, CollapsesFlexibleSchemes) {
  Plan plan;
  const int a = AddNode(&plan, "A",
                        SchemeBit(Scheme::kRow) | SchemeBit(Scheme::kCol));
  AddStep(&plan, StepKind::kLoad, {}, a);
  ASSERT_TRUE(plan.Finalize().ok());
  EXPECT_TRUE(SchemeSetIsSingle(plan.nodes[0].schemes));
  EXPECT_EQ(plan.nodes[0].scheme(), Scheme::kRow);
}

TEST(PlanFinalizeTest, DetectsCycles) {
  Plan plan;
  const int a = AddNode(&plan, "A", SchemeBit(Scheme::kRow));
  const int b = AddNode(&plan, "B", SchemeBit(Scheme::kRow));
  AddStep(&plan, StepKind::kTranspose, {b}, a);
  AddStep(&plan, StepKind::kTranspose, {a}, b);
  Status st = plan.Finalize();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
}

TEST(PlanFinalizeTest, MissingProducerDetected) {
  Plan plan;
  const int a = AddNode(&plan, "A", SchemeBit(Scheme::kRow));
  const int b = AddNode(&plan, "B", SchemeBit(Scheme::kRow));
  AddStep(&plan, StepKind::kTranspose, {b}, a);  // b never produced
  EXPECT_FALSE(plan.Finalize().ok());
}

TEST(PlanFinalizeTest, ToStringListsStagesInOrder) {
  Plan plan;
  const int a = AddNode(&plan, "A", SchemeBit(Scheme::kRow));
  const int b = AddNode(&plan, "B", SchemeBit(Scheme::kBroadcast));
  AddStep(&plan, StepKind::kLoad, {}, a);
  AddStep(&plan, StepKind::kBroadcast, {a}, b).comm_bytes = 64;
  ASSERT_TRUE(plan.Finalize().ok());
  const std::string text = plan.ToString();
  const size_t s1 = text.find("=== Stage 1 ===");
  const size_t s2 = text.find("=== Stage 2 ===");
  ASSERT_NE(s1, std::string::npos);
  ASSERT_NE(s2, std::string::npos);
  EXPECT_LT(s1, s2);
  EXPECT_NE(text.find("broadcast"), std::string::npos);
  EXPECT_NE(text.find("B(b)"), std::string::npos);
}

}  // namespace
}  // namespace dmac
