#include "plan/scheme.h"

#include <gtest/gtest.h>

namespace dmac {
namespace {

constexpr Scheme kR = Scheme::kRow;
constexpr Scheme kC = Scheme::kCol;
constexpr Scheme kB = Scheme::kBroadcast;

TEST(SchemeTest, EqualBOnlyForTwoBroadcasts) {
  EXPECT_TRUE(EqualB(kB, kB));
  EXPECT_FALSE(EqualB(kR, kR));
  EXPECT_FALSE(EqualB(kB, kR));
  EXPECT_FALSE(EqualB(kC, kB));
}

TEST(SchemeTest, EqualRCOnlyForSameRowOrColumn) {
  EXPECT_TRUE(EqualRC(kR, kR));
  EXPECT_TRUE(EqualRC(kC, kC));
  EXPECT_FALSE(EqualRC(kB, kB));
  EXPECT_FALSE(EqualRC(kR, kC));
  EXPECT_FALSE(EqualRC(kR, kB));
}

TEST(SchemeTest, OpposeOnlyRowVsColumn) {
  EXPECT_TRUE(Oppose(kR, kC));
  EXPECT_TRUE(Oppose(kC, kR));
  EXPECT_FALSE(Oppose(kR, kR));
  EXPECT_FALSE(Oppose(kB, kR));
  EXPECT_FALSE(Oppose(kC, kB));
}

TEST(SchemeTest, ContainIsBroadcastOverRowColumn) {
  EXPECT_TRUE(Contain(kB, kR));
  EXPECT_TRUE(Contain(kB, kC));
  EXPECT_FALSE(Contain(kB, kB));
  EXPECT_FALSE(Contain(kR, kB));
  EXPECT_FALSE(Contain(kR, kC));
}

TEST(SchemeTest, PredicatesPartitionAllPairs) {
  // For every (pi, pj), exactly one of the four Table 1 relations that the
  // dependency table uses per row must hold:
  //   same-matrix rows: Oppose | (EqualRC||EqualB) | Contain(pj,pi) |
  //   Contain(pi,pj).
  for (Scheme pi : {kR, kC, kB}) {
    for (Scheme pj : {kR, kC, kB}) {
      const int hits = (Oppose(pi, pj) ? 1 : 0) +
                       ((EqualRC(pi, pj) || EqualB(pi, pj)) ? 1 : 0) +
                       (Contain(pj, pi) ? 1 : 0) + (Contain(pi, pj) ? 1 : 0);
      EXPECT_EQ(hits, 1) << SchemeChar(pi) << SchemeChar(pj);
    }
  }
}

TEST(SchemeTest, OppositeScheme) {
  EXPECT_EQ(OppositeScheme(kR), kC);
  EXPECT_EQ(OppositeScheme(kC), kR);
  EXPECT_EQ(OppositeScheme(kB), kB);
}

TEST(SchemeSetTest, BitOperations) {
  SchemeSet set = SchemeBit(kR) | SchemeBit(kC);
  EXPECT_TRUE(SchemeSetContains(set, kR));
  EXPECT_TRUE(SchemeSetContains(set, kC));
  EXPECT_FALSE(SchemeSetContains(set, kB));
  EXPECT_FALSE(SchemeSetIsSingle(set));
  EXPECT_TRUE(SchemeSetIsSingle(SchemeBit(kB)));
  EXPECT_FALSE(SchemeSetIsSingle(kNoSchemes));
}

TEST(SchemeSetTest, FirstPrefersLowestBit) {
  EXPECT_EQ(SchemeSetFirst(SchemeBit(kR) | SchemeBit(kC)), kR);
  EXPECT_EQ(SchemeSetFirst(SchemeBit(kC) | SchemeBit(kB)), kC);
  EXPECT_EQ(SchemeSetFirst(SchemeBit(kB)), kB);
}

TEST(SchemeSetTest, ToStringRendersMembers) {
  EXPECT_EQ(SchemeSetToString(SchemeBit(kR) | SchemeBit(kC)), "r|c");
  EXPECT_EQ(SchemeSetToString(SchemeBit(kB)), "b");
  EXPECT_EQ(SchemeSetToString(kNoSchemes), "-");
}

}  // namespace
}  // namespace dmac
