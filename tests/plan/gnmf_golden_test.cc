// Golden test: the structure of the GNMF plan at Netflix scale — the
// reproduction's analogue of the paper's Fig. 3 walkthrough. Pins down
// which strategy each multiply uses in steady state and which matrices
// ever cross the network, so planner regressions are caught precisely.
#include <gtest/gtest.h>

#include <map>

#include "apps/gnmf.h"
#include "lang/decompose.h"
#include "plan/planner.h"

namespace dmac {
namespace {

Plan NetflixGnmfPlan(int iterations) {
  Program p = BuildGnmfProgram({480189, 17770, 0.011, 200, iterations});
  auto ops = Decompose(p);
  EXPECT_TRUE(ops.ok());
  PlannerOptions opts;
  opts.num_workers = 4;
  auto plan = GeneratePlan(*ops, opts);
  EXPECT_TRUE(plan.ok());
  return *plan;
}

TEST(GnmfGoldenTest, SteadyStateMultiplyStrategies) {
  // Iteration 2+ is steady state. Expected per iteration, as in §6.2/Fig. 3:
  //   WᵀV   → CPMM  (Wᵀ(c) free from W(r); V(r) cached)
  //   WᵀW   → CPMM  (tiny k×k output)
  //   WᵀW·H → RMM   (broadcast the tiny k×k factor)
  //   V·Hᵀ  → RMM2  (broadcast the small Hᵀ)
  //   H·Hᵀ  → RMM   (k×k output from broadcast H)
  //   W·HHᵀ → RMM2  (broadcast the tiny k×k factor)
  Plan plan = NetflixGnmfPlan(3);

  // Count strategies over the final iteration's multiply steps.
  std::vector<MultAlgo> algos;
  for (const PlanStep& s : plan.steps) {
    if (s.kind == StepKind::kCompute && s.op_kind == OpKind::kMultiply) {
      algos.push_back(s.mult_algo);
    }
  }
  // 6 multiplies per iteration, 3 iterations.
  ASSERT_EQ(algos.size(), 18u);
  std::map<MultAlgo, int> last_iteration;
  for (size_t i = 12; i < 18; ++i) ++last_iteration[algos[i]];
  EXPECT_EQ(last_iteration[MultAlgo::kCPMM], 2);  // WᵀV and WᵀW
  EXPECT_EQ(last_iteration[MultAlgo::kRMM1] + last_iteration[MultAlgo::kRMM2],
            4);
}

TEST(GnmfGoldenTest, OnlySmallMatricesMoveInSteadyState) {
  // After the one-time V load/partition, no step may move anything within
  // an order of magnitude of |V| (~750 MB) or dense |W| (~384 MB): only
  // k-width factors (≲ 57 MB at k=200) travel.
  Plan plan = NetflixGnmfPlan(3);
  double v_scale_moves = 0;
  int load_steps = 0;
  for (const PlanStep& s : plan.steps) {
    if (s.kind == StepKind::kLoad) {
      ++load_steps;
      continue;
    }
    EXPECT_LT(s.comm_bytes, 80e6) << "step " << s.id << " moves "
                                  << s.comm_bytes;
    v_scale_moves += s.comm_bytes > 100e6;
  }
  EXPECT_EQ(load_steps, 1);
  EXPECT_EQ(v_scale_moves, 0);
}

TEST(GnmfGoldenTest, SteadyStateCommMatchesPaperRate) {
  // §6.2: ~1.5 GB over 10 iterations. Our plan's steady-state rate:
  // CPMM(WᵀV) N·|WᵀV| + CPMM(WᵀW) N·|WᵀW| + broadcasts of WᵀW, Hᵀ, HHᵀ
  // ≈ 115 MB per iteration at N=4.
  Plan plan3 = NetflixGnmfPlan(3);
  Plan plan4 = NetflixGnmfPlan(4);
  const double per_iteration =
      plan4.total_comm_bytes - plan3.total_comm_bytes;
  EXPECT_GT(per_iteration, 80e6);
  EXPECT_LT(per_iteration, 150e6);
  // 10 iterations land in the paper's reported ballpark (~1.5 GB ± load).
  const double ten_iterations =
      plan3.total_comm_bytes + 7 * per_iteration;
  EXPECT_GT(ten_iterations, 1.0e9);
  EXPECT_LT(ten_iterations, 2.5e9);
}

TEST(GnmfGoldenTest, CellwiseOperatorsAreFullyLocal) {
  // §6.2: "DMac can conduct this computation phase without any
  // communication cost" — every cell-wise step must cost zero and sit in
  // the same stage as at least one of its producers.
  Plan plan = NetflixGnmfPlan(2);
  for (const PlanStep& s : plan.steps) {
    if (s.kind != StepKind::kCompute) continue;
    if (s.op_kind == OpKind::kCellMultiply ||
        s.op_kind == OpKind::kCellDivide) {
      EXPECT_EQ(s.comm_bytes, 0);
      EXPECT_FALSE(s.Communicates());
    }
  }
}

TEST(GnmfGoldenTest, TransposesAreDerivedNotShipped) {
  // Every Wᵀ/Hᵀ in the program resolves through local transpose/extract
  // steps; a transpose must never be preceded by a partition of the same
  // matrix within the iteration (that would be a Transpose-Partition
  // dependency the planner should have avoided).
  Plan plan = NetflixGnmfPlan(2);
  int transposes = 0;
  for (const PlanStep& s : plan.steps) {
    if (s.kind == StepKind::kTranspose) {
      ++transposes;
      EXPECT_EQ(s.comm_bytes, 0);
    }
  }
  EXPECT_GT(transposes, 0);
}

TEST(GnmfGoldenTest, StageCountGrowsLinearlyWithIterations) {
  // Stages per iteration are constant in steady state (the paper's Fig. 3
  // shows a fixed per-iteration stage structure).
  const int s2 = NetflixGnmfPlan(2).num_stages;
  const int s3 = NetflixGnmfPlan(3).num_stages;
  const int s4 = NetflixGnmfPlan(4).num_stages;
  EXPECT_EQ(s3 - s2, s4 - s3);
  EXPECT_GT(s3, s2);
}

}  // namespace
}  // namespace dmac
