// Cost-based plan search: beam/exhaustive agreement on small programs, the
// searched-never-worse-than-greedy guarantee, the forced-strategy planner
// hook, and the pinned default behavior when the search is off.
#include "plan/search.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "apps/gnmf.h"
#include "apps/pagerank.h"
#include "lang/decompose.h"
#include "plan/planner.h"

namespace dmac {
namespace {

OperatorList MustDecompose(const Program& p) {
  auto ops = Decompose(p);
  EXPECT_TRUE(ops.ok()) << ops.status();
  return *ops;
}

CostModel DefaultModel() {
  return CostModel(CalibrationTable::Builtin(), CostModelOptions{});
}

SearchResult MustSearch(const OperatorList& ops, SearchOptions sopts,
                        PlannerOptions base = {}) {
  auto res = SearchPlans(ops, base, sopts, DefaultModel());
  EXPECT_TRUE(res.ok()) << res.status();
  return *res;
}

/// One multiply over two loads: a space small enough for exhaustive mode.
Program TinyProgram() {
  ProgramBuilder pb;
  Mat a = pb.Load("A", {100000, 4000}, 1e-3);
  Mat b = pb.Load("B", {4000, 64}, 1.0);
  Mat c = pb.Var("C");
  pb.Assign(c, a.mm(b));
  pb.Output(c);
  return pb.Build();
}

TEST(PlanSearchTest, ModeNamesRoundTrip) {
  for (PlanSearchMode m : {PlanSearchMode::kOff, PlanSearchMode::kBeam,
                           PlanSearchMode::kExhaustive}) {
    auto parsed = ParsePlanSearchMode(PlanSearchModeName(m));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_FALSE(ParsePlanSearchMode("greedy").ok());
}

TEST(PlanSearchTest, BeamMatchesExhaustiveOnSmallProgram) {
  OperatorList ops = MustDecompose(TinyProgram());
  SearchOptions beam;
  beam.mode = PlanSearchMode::kBeam;
  beam.beam_width = 64;  // wide enough to not prune anything
  SearchOptions exhaustive;
  exhaustive.mode = PlanSearchMode::kExhaustive;
  exhaustive.beam_width = 64;
  SearchResult b = MustSearch(ops, beam);
  SearchResult e = MustSearch(ops, exhaustive);
  ASSERT_FALSE(b.candidates.empty());
  ASSERT_FALSE(e.candidates.empty());
  EXPECT_NEAR(b.best().cost.seconds(), e.best().cost.seconds(), 1e-12);
  EXPECT_NEAR(b.best().cost.comm_bytes, e.best().cost.comm_bytes, 1e-6);
  EXPECT_EQ(b.best().plan.ToString(), e.best().plan.ToString());
}

TEST(PlanSearchTest, GreedyIsAlwaysACandidate) {
  SearchOptions sopts;
  sopts.beam_width = 4;
  SearchResult res =
      MustSearch(MustDecompose(BuildGnmfProgram({2000, 1500, 0.05, 16, 3})),
                 sopts);
  int greedy_count = 0;
  for (const PlanCandidate& c : res.candidates) greedy_count += c.greedy;
  EXPECT_EQ(greedy_count, 1);
}

TEST(PlanSearchTest, SearchedNeverEstimatesWorseThanGreedy) {
  for (const Program& p :
       {BuildGnmfProgram({2000, 1500, 0.05, 16, 3}),
        BuildPageRankProgram({5000, 1e-3, 3, 0.85})}) {
    SearchResult res = MustSearch(MustDecompose(p), SearchOptions{});
    const PlanCandidate* greedy = nullptr;
    for (const PlanCandidate& c : res.candidates) {
      if (c.greedy) greedy = &c;
    }
    ASSERT_NE(greedy, nullptr);
    EXPECT_LE(res.best().cost.seconds(), greedy->cost.seconds());
    // Candidates are ranked best-first.
    for (size_t i = 1; i < res.candidates.size(); ++i) {
      EXPECT_LE(res.candidates[i - 1].cost.seconds(),
                res.candidates[i].cost.seconds() + 1e-12);
    }
  }
}

TEST(PlanSearchTest, IterationsShareDecisions) {
  // An unrolled loop must not multiply the search space: 3 iterations and
  // 6 iterations of GNMF see the same decision axes.
  SearchOptions sopts;
  SearchResult three =
      MustSearch(MustDecompose(BuildGnmfProgram({2000, 1500, 0.05, 16, 3})),
                 sopts);
  SearchResult six =
      MustSearch(MustDecompose(BuildGnmfProgram({2000, 1500, 0.05, 16, 6})),
                 sopts);
  EXPECT_EQ(three.stats.decisions, six.stats.decisions);
  EXPECT_GT(three.stats.decisions, 2);  // toggles + at least one group
}

TEST(PlanSearchTest, ExhaustiveRefusesOversizedSpaces) {
  SearchOptions sopts;
  sopts.mode = PlanSearchMode::kExhaustive;
  sopts.max_exhaustive = 4;
  auto res =
      SearchPlans(MustDecompose(BuildGnmfProgram({2000, 1500, 0.05, 16, 3})),
                  PlannerOptions{}, sopts, DefaultModel());
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.status().ToString().find("exhaustive"), std::string::npos);
}

TEST(PlanSearchTest, RejectsPreforcedBaseOptions) {
  PlannerOptions base;
  base.forced_strategies[0] = 1;
  auto res = SearchPlans(MustDecompose(TinyProgram()), base, SearchOptions{},
                         DefaultModel());
  EXPECT_FALSE(res.ok());
}

TEST(PlanSearchTest, OffModeIsAnError) {
  SearchOptions sopts;
  sopts.mode = PlanSearchMode::kOff;
  EXPECT_FALSE(SearchPlans(MustDecompose(TinyProgram()), PlannerOptions{},
                           sopts, DefaultModel())
                   .ok());
}

TEST(PlanSearchTest, ForcedStrategyOverridesGreedyChoice) {
  // The planner hook the search drives: forcing a non-greedy candidate
  // index must change the chosen strategy, and an out-of-range index must
  // fail rather than truncate.
  OperatorList ops = MustDecompose(TinyProgram());
  PlannerOptions base;
  auto greedy = GeneratePlan(ops, base);
  ASSERT_TRUE(greedy.ok()) << greedy.status();

  int multiply_id = -1;
  for (const Operator& op : ops.ops) {
    if (op.kind == OpKind::kMultiply) multiply_id = op.id;
  }
  ASSERT_GE(multiply_id, 0);
  const size_t n = CandidateStrategies(
                       *std::find_if(ops.ops.begin(), ops.ops.end(),
                                     [&](const Operator& op) {
                                       return op.id == multiply_id;
                                     }))
                       .size();
  ASSERT_GE(n, 2u);

  bool changed = false;
  for (size_t i = 0; i < n; ++i) {
    PlannerOptions forced = base;
    forced.forced_strategies[multiply_id] = static_cast<int>(i);
    auto plan = GeneratePlan(ops, forced);
    ASSERT_TRUE(plan.ok()) << plan.status();
    changed = changed || plan->ToString() != greedy->ToString();
  }
  EXPECT_TRUE(changed);

  PlannerOptions bad = base;
  bad.forced_strategies[multiply_id] = static_cast<int>(n);
  EXPECT_FALSE(GeneratePlan(ops, bad).ok());
}

TEST(PlanSearchTest, SearchOffLeavesLookaheadTieBreakUntouched) {
  // Pin the default pipeline: with no forced strategies the planner's
  // lookahead tie-break still decides load schemes exactly as before the
  // search layer existed (an empty forced map is not "force nothing
  // different", it is the identical greedy code path).
  Program p = BuildGnmfProgram({2000, 1500, 0.05, 16, 3});
  OperatorList ops = MustDecompose(p);
  PlannerOptions defaults;
  PlannerOptions with_empty_map;
  with_empty_map.forced_strategies.clear();
  auto a = GeneratePlan(ops, defaults);
  auto b = GeneratePlan(ops, with_empty_map);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->ToString(), b->ToString());

  // And lookahead still only breaks ties: disabling it never plans better.
  PlannerOptions no_lookahead;
  no_lookahead.lookahead_edges = 0;
  auto c = GeneratePlan(ops, no_lookahead);
  ASSERT_TRUE(c.ok());
  EXPECT_LE(a->total_comm_bytes, c->total_comm_bytes * 1.001);
}

TEST(PlanSearchTest, StatsAreAccounted) {
  SearchResult res = MustSearch(MustDecompose(TinyProgram()), SearchOptions{});
  EXPECT_GT(res.stats.decisions, 0);
  EXPECT_GT(res.stats.planned, 0);
  EXPECT_GT(res.stats.verified, 0);
  EXPECT_GT(res.stats.seconds, 0.0);
  EXPECT_EQ(res.stats.rejected, 0);
}

}  // namespace
}  // namespace dmac
