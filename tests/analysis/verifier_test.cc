// End-to-end verifier tests: the default pipeline, the GeneratePlan debug
// post-pass, and the negative guarantee that every paper workload plans
// lint-clean under both planners.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/passes.h"
#include "analysis_test_util.h"
#include "apps/gnmf.h"
#include "apps/linear_regression.h"
#include "apps/logistic_regression.h"
#include "apps/pagerank.h"
#include "apps/svd_lanczos.h"
#include "lang/decompose.h"

namespace dmac {
namespace {

TEST(AnalyzerTest, DefaultPipelineHasSevenPasses) {
  EXPECT_EQ(Analyzer::Default().num_passes(), 7u);
}

TEST(AnalyzerTest, EmptyContextProducesNoFindings) {
  const AnalysisReport report = Analyzer::Default().Run(AnalysisContext{});
  EXPECT_TRUE(report.diagnostics.empty()) << Dump(report);
}

TEST(AnalyzerTest, PassesCanRunIndividually) {
  const OperatorList ops = ParseOps(
      "V = load(\"V\", 1000, 100, 1)\n"
      "s = colsums(V)\n"
      "output(s)\n");
  AnalysisContext ctx;
  ctx.ops = &ops;
  std::vector<Diagnostic> out;
  MakeShapeInferencePass()->Run(ctx, &out);
  MakeDependencyGraphPass()->Run(ctx, &out);
  MakeAliasSafetyPass()->Run(ctx, &out);
  for (const Diagnostic& d : out) {
    EXPECT_NE(d.severity, Severity::kError) << d.ToString();
  }
}

/// Every paper workload, as its application builder emits it.
std::vector<std::pair<std::string, Program>> PaperPrograms() {
  std::vector<std::pair<std::string, Program>> programs;
  GnmfConfig gnmf;
  gnmf.rows = 100000;
  gnmf.cols = 10000;
  gnmf.sparsity = 1e-4;
  gnmf.iterations = 2;
  programs.emplace_back("gnmf", BuildGnmfProgram(gnmf));

  PageRankConfig pagerank;
  pagerank.nodes = 100000;
  pagerank.link_sparsity = 1e-4;
  pagerank.iterations = 2;
  programs.emplace_back("pagerank", BuildPageRankProgram(pagerank));

  LinRegConfig linreg;
  linreg.examples = 100000;
  linreg.features = 10000;
  linreg.sparsity = 1e-4;
  linreg.iterations = 2;
  programs.emplace_back("linreg", BuildLinearRegressionProgram(linreg));

  LogRegConfig logreg;
  logreg.examples = 100000;
  logreg.features = 10000;
  logreg.sparsity = 1e-4;
  logreg.iterations = 2;
  programs.emplace_back("logreg", BuildLogisticRegressionProgram(logreg));

  SvdConfig svd;
  svd.rows = 100000;
  svd.cols = 10000;
  svd.sparsity = 1e-4;
  svd.rank = 3;
  programs.emplace_back("svd", BuildSvdLanczosProgram(svd));
  return programs;
}

TEST(VerifierTest, AllPaperWorkloadsLintCleanUnderBothPlanners) {
  for (const auto& [name, program] : PaperPrograms()) {
    auto ops = Decompose(program);
    ASSERT_TRUE(ops.ok()) << name << ": " << ops.status().ToString();
    for (bool exploit : {true, false}) {
      for (int workers : {2, 4, 16}) {
        // MustPlan runs GeneratePlan with verify_plan=true: the debug
        // post-pass itself must accept every workload.
        const Plan plan = MustPlan(*ops, workers, exploit);
        const AnalysisReport report = AnalyzeProgram(&*ops, &plan, workers);
        EXPECT_FALSE(report.HasErrors())
            << name << " exploit=" << exploit << " workers=" << workers
            << "\n" << Dump(report);
        EXPECT_TRUE(VerifyPlan(*ops, plan, workers).ok()) << name;
      }
    }
  }
}

TEST(VerifierTest, VerifyPlanCatchesPostPlanningCorruption) {
  GnmfConfig config;
  config.rows = 100000;
  config.cols = 10000;
  config.sparsity = 1e-4;
  config.iterations = 1;
  auto ops = Decompose(BuildGnmfProgram(config));
  ASSERT_TRUE(ops.ok());
  Plan plan = MustPlan(*ops);

  ASSERT_FALSE(plan.nodes.empty());
  PlanNode& node = plan.nodes[0];
  const Scheme flipped = node.scheme() == Scheme::kBroadcast
                             ? Scheme::kRow
                             : OppositeScheme(node.scheme());
  node.schemes = SchemeBit(flipped);

  const Status status = VerifyPlan(*ops, plan, 4);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("scheme-consistency"), std::string::npos)
      << status.ToString();
}

TEST(VerifierTest, CheckOperatorsGateMirrorsGeneratePlan) {
  // A well-formed list passes the gate...
  const OperatorList good = ParseOps(
      "V = load(\"V\", 100, 100, 1)\n"
      "W = V %*% V\n"
      "output(W)\n");
  EXPECT_TRUE(CheckOperators(good).ok());

  // ...a malformed one is rejected with the same Status GeneratePlan gives.
  OperatorList bad = good;
  bad.ops[1].inputs.clear();
  const Status gate = CheckOperators(bad);
  ASSERT_FALSE(gate.ok());
  auto plan = GeneratePlan(bad, PlannerOptions{});
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), gate.code());
}

}  // namespace
}  // namespace dmac
