// Golden diagnostics of the comm-cost and alias-safety passes.
//
// comm-cost recomputes every step's communication bytes from shapes and
// schemes (§4.1 cost situations) and must catch a plan whose recorded
// estimates drifted from what the shapes imply; alias-safety catches the
// §5 in-place hazard (updating a matrix that is still live).
#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "analysis_test_util.h"

namespace dmac {
namespace {

const char kProgram[] =
    "V = load(\"V\", 100000, 1000, 0.001)\n"
    "w = random(1000, 1)\n"
    "p = V %*% w\n"
    "q = t(V) %*% p\n"
    "output(q)\n";

// ---- comm-cost -----------------------------------------------------------

TEST(CommPassTest, ValidPlanCommEstimatesReconcile) {
  const OperatorList ops = ParseOps(kProgram);
  const Plan plan = MustPlan(ops);
  const AnalysisReport report = AnalyzeProgram(&ops, &plan, 4);
  EXPECT_TRUE(report.FromPass("comm-cost").empty()) << Dump(report);
}

TEST(CommPassTest, InflatedStepEstimateIsDiagnosed) {
  const OperatorList ops = ParseOps(kProgram);
  Plan plan = MustPlan(ops);
  PlanStep* comm_step = nullptr;
  for (PlanStep& step : plan.steps) {
    if (step.Communicates()) comm_step = &step;
  }
  ASSERT_NE(comm_step, nullptr);
  comm_step->comm_bytes = comm_step->comm_bytes * 10 + 12345;

  const AnalysisReport report = AnalyzeProgram(&ops, &plan, 4);
  EXPECT_TRUE(HasDiag(report, "comm-cost", Severity::kError,
                      "shapes and schemes imply"))
      << Dump(report);
}

TEST(CommPassTest, PhantomCommOnALocalStepIsDiagnosed) {
  const OperatorList ops = ParseOps(kProgram);
  Plan plan = MustPlan(ops);
  PlanStep* local_step = nullptr;
  for (PlanStep& step : plan.steps) {
    if (!step.Communicates() && step.kind == StepKind::kCompute) {
      local_step = &step;
    }
  }
  ASSERT_NE(local_step, nullptr);
  local_step->comm_bytes = 1e6;  // a local step claims network traffic

  const AnalysisReport report = AnalyzeProgram(&ops, &plan, 4);
  EXPECT_TRUE(HasDiag(report, "comm-cost", Severity::kError,
                      "shapes and schemes imply"))
      << Dump(report);
}

TEST(CommPassTest, WrongPlanTotalIsDiagnosed) {
  const OperatorList ops = ParseOps(kProgram);
  Plan plan = MustPlan(ops);
  plan.total_comm_bytes += 4096;

  const AnalysisReport report = AnalyzeProgram(&ops, &plan, 4);
  EXPECT_TRUE(HasDiag(report, "comm-cost", Severity::kError,
                      "plan total_comm_bytes is"))
      << Dump(report);
}

// ---- alias-safety --------------------------------------------------------

TEST(AliasPassTest, SelfReadingUpdateIsDiagnosed) {
  OperatorList ops;
  Operator load;
  load.id = 0;
  load.kind = OpKind::kLoad;
  load.output = "A#1";
  load.decl_shape = {10, 10};
  load.source = "A";
  ops.ops.push_back(load);

  Operator update;  // A#1 = A#1 + A#1 — an in-place self update
  update.id = 1;
  update.kind = OpKind::kAdd;
  update.inputs = {{"A#1", false}, {"A#1", false}};
  update.output = "A#1";
  ops.ops.push_back(update);
  ops.output_bindings["A"] = {"A#1", false};

  const AnalysisReport report = AnalyzeProgram(&ops, nullptr, 4);
  EXPECT_TRUE(HasDiag(report, "alias-safety", Severity::kError,
                      "in place while reading it"))
      << Dump(report);
}

TEST(AliasPassTest, OverwritingALiveMatrixIsDiagnosed) {
  OperatorList ops;
  Operator load;
  load.id = 0;
  load.kind = OpKind::kLoad;
  load.output = "A#1";
  load.decl_shape = {10, 10};
  load.source = "A";
  ops.ops.push_back(load);

  Operator clobber;  // redefine A#1 from fresh data...
  clobber.id = 1;
  clobber.kind = OpKind::kRandom;
  clobber.output = "A#1";
  clobber.decl_shape = {10, 10};
  clobber.source = "seed";
  ops.ops.push_back(clobber);

  Operator reader;  // ...while a later operator still reads it
  reader.id = 2;
  reader.kind = OpKind::kRowSums;
  reader.inputs = {{"A#1", false}};
  reader.output = "B#1";
  ops.ops.push_back(reader);
  ops.output_bindings["B"] = {"B#1", false};

  const AnalysisReport report = AnalyzeProgram(&ops, nullptr, 4);
  EXPECT_TRUE(HasDiag(report, "alias-safety", Severity::kError,
                      "while it is still live"))
      << Dump(report);
}

TEST(AliasPassTest, StepReadingItsOwnOutputIsDiagnosed) {
  const OperatorList ops = ParseOps(kProgram);
  Plan plan = MustPlan(ops);
  PlanStep* compute = nullptr;
  for (PlanStep& step : plan.steps) {
    if (step.kind == StepKind::kCompute && !step.inputs.empty() &&
        step.output >= 0) {
      compute = &step;
    }
  }
  ASSERT_NE(compute, nullptr);
  compute->inputs[0] = compute->output;

  const AnalysisReport report = AnalyzeProgram(&ops, &plan, 4);
  EXPECT_TRUE(HasDiag(report, "alias-safety", Severity::kError,
                      "reads and writes node"))
      << Dump(report);
}

TEST(AliasPassTest, SsaProgramsHaveNoAliasErrors) {
  const OperatorList ops = ParseOps(kProgram);
  const Plan plan = MustPlan(ops);
  const AnalysisReport report = AnalyzeProgram(&ops, &plan, 4);
  for (const Diagnostic& d : report.FromPass("alias-safety")) {
    EXPECT_NE(d.severity, Severity::kError) << d.ToString();
  }
}

}  // namespace
}  // namespace dmac
