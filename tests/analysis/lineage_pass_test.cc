// lineage-completeness pass: producer_step annotations, producibility of
// consumed nodes, and termination of output lineage closures.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/passes.h"
#include "analysis_test_util.h"

namespace dmac {
namespace {

constexpr char kPass[] = "lineage-completeness";

AnalysisReport RunPass(const Plan& plan) {
  AnalysisContext ctx;
  ctx.plan = &plan;
  std::vector<Diagnostic> out;
  MakeLineageCompletenessPass()->Run(ctx, &out);
  AnalysisReport report;
  report.diagnostics = std::move(out);
  return report;
}

Plan SmallPlan() {
  return MustPlan(ParseOps(
      "A = load(\"A\", 600, 400, 0.1)\n"
      "B = load(\"B\", 400, 300, 1)\n"
      "C = A %*% B\n"
      "output(C)\n"));
}

TEST(LineagePassTest, CleanPlanHasNoFindings) {
  const AnalysisReport report = RunPass(SmallPlan());
  EXPECT_TRUE(report.diagnostics.empty()) << Dump(report);
}

TEST(LineagePassTest, OperatorOnlyContextIsSkipped) {
  AnalysisContext ctx;
  const OperatorList ops = ParseOps(
      "A = load(\"A\", 10, 10, 1)\n"
      "output(A)\n");
  ctx.ops = &ops;
  std::vector<Diagnostic> out;
  MakeLineageCompletenessPass()->Run(ctx, &out);
  EXPECT_TRUE(out.empty());
}

TEST(LineagePassTest, StaleProducerAnnotationIsAnError) {
  Plan plan = SmallPlan();
  // Point one produced node at a different (valid) step.
  for (PlanNode& node : plan.nodes) {
    if (node.producer_step > 0) {
      node.producer_step = 0;
      break;
    }
  }
  const AnalysisReport report = RunPass(plan);
  EXPECT_TRUE(HasDiag(report, kPass, Severity::kError,
                      "but is written by step"))
      << Dump(report);
}

TEST(LineagePassTest, OutOfRangeProducerAnnotationIsAnError) {
  Plan plan = SmallPlan();
  plan.nodes.front().producer_step = 999;
  const AnalysisReport report = RunPass(plan);
  EXPECT_TRUE(HasDiag(report, kPass, Severity::kError,
                      "outside the step table"))
      << Dump(report);
}

TEST(LineagePassTest, MissingProducerStepIsAnError) {
  Plan plan = SmallPlan();
  // Delete the producing step of some consumed node: its consumers and the
  // output lineage both lose their recovery recipe.
  plan.steps.erase(plan.steps.begin());
  const AnalysisReport report = RunPass(plan);
  EXPECT_TRUE(HasDiag(report, kPass, Severity::kError, "no step produces"))
      << Dump(report);
}

TEST(LineagePassTest, LineageCycleIsAnError) {
  Plan plan = SmallPlan();
  // Rewire the output's producer to consume its own output node.
  const int out_node = plan.outputs.front().node;
  for (PlanStep& step : plan.steps) {
    if (step.output == out_node) {
      step.inputs.assign(1, out_node);
      break;
    }
  }
  const AnalysisReport report = RunPass(plan);
  EXPECT_TRUE(HasDiag(report, kPass, Severity::kError, "cycles through"))
      << Dump(report);
}

TEST(LineagePassTest, ResumeWithoutCheckpointHintsWarns) {
  const Plan plan = SmallPlan();
  AnalysisContext ctx;
  ctx.plan = &plan;
  ctx.resume = true;
  std::vector<Diagnostic> out;
  MakeLineageCompletenessPass()->Run(ctx, &out);
  AnalysisReport report;
  report.diagnostics = std::move(out);
  EXPECT_TRUE(
      HasDiag(report, kPass, Severity::kWarning, "no checkpoint hints"))
      << Dump(report);
}

TEST(LineagePassTest, ResumeWithCheckpointHintsDoesNotWarn) {
  Plan plan = SmallPlan();
  plan.nodes.back().checkpoint_hint = true;
  AnalysisContext ctx;
  ctx.plan = &plan;
  ctx.resume = true;
  std::vector<Diagnostic> out;
  MakeLineageCompletenessPass()->Run(ctx, &out);
  EXPECT_TRUE(out.empty());
}

TEST(LineagePassTest, NoResumeNoCadenceWarning) {
  // The same hint-free plan is silent without resume (RunPass leaves
  // ctx.resume at its default false).
  const AnalysisReport report = RunPass(SmallPlan());
  EXPECT_TRUE(report.diagnostics.empty()) << Dump(report);
}

TEST(LineagePassTest, AnalyzeProgramPlumbsResumeThrough) {
  const OperatorList ops = ParseOps(
      "A = load(\"A\", 600, 400, 0.1)\n"
      "B = load(\"B\", 400, 300, 1)\n"
      "C = A %*% B\n"
      "output(C)\n");
  const Plan plan = MustPlan(ops);
  const AnalysisReport report =
      AnalyzeProgram(&ops, &plan, /*num_workers=*/4, /*min_workers=*/1,
                     /*resume=*/true);
  EXPECT_TRUE(
      HasDiag(report, kPass, Severity::kWarning, "no checkpoint hints"))
      << Dump(report);
}

TEST(LineagePassTest, EveryPaperPlanIsLineageComplete) {
  for (const char* script :
       {"V = load(\"V\", 3000, 1200, 0.01)\n"
        "W = random(3000, 40)\n"
        "H = random(40, 1200)\n"
        "H = H * (t(W) %*% V) / (t(W) %*% W %*% H)\n"
        "W = W * (V %*% t(H)) / (W %*% H %*% t(H))\n"
        "output(W)\noutput(H)\n",
        "link = load(\"link\", 5000, 5000, 0.001)\n"
        "D = load(\"D\", 1, 5000, 1)\n"
        "rank = random(1, 5000)\n"
        "rank = (rank %*% link) * 0.85 + D * 0.15\n"
        "output(rank)\n"}) {
    const AnalysisReport report = RunPass(MustPlan(ParseOps(script)));
    EXPECT_TRUE(report.diagnostics.empty()) << Dump(report);
  }
}

}  // namespace
}  // namespace dmac
