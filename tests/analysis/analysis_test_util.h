// Shared helpers of the analysis test suite: parse a script into an
// operator list, plan it with the debug post-pass enabled, and query an
// AnalysisReport for an expected finding.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "analysis/analyzer.h"
#include "lang/decompose.h"
#include "lang/parser.h"
#include "plan/planner.h"

namespace dmac {

/// Parses and decomposes an inline script; fails the test on any error.
inline OperatorList ParseOps(const std::string& source) {
  auto program = ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  auto ops = Decompose(*program);
  EXPECT_TRUE(ops.ok()) << ops.status().ToString();
  return std::move(*ops);
}

/// Plans with the verifier forced on, so every test that goes through this
/// helper also exercises the GeneratePlan debug post-pass regardless of the
/// build type.
inline Plan MustPlan(const OperatorList& ops, int workers = 4,
                     bool exploit_dependencies = true) {
  PlannerOptions opts;
  opts.num_workers = workers;
  opts.exploit_dependencies = exploit_dependencies;
  opts.verify_plan = true;
  auto plan = GeneratePlan(ops, opts);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return std::move(*plan);
}

/// True when the report holds a diagnostic from `pass` at `severity` whose
/// message contains `substring`.
inline bool HasDiag(const AnalysisReport& report, const std::string& pass,
                    Severity severity, const std::string& substring) {
  for (const Diagnostic& d : report.diagnostics) {
    if (d.pass == pass && d.severity == severity &&
        d.message.find(substring) != std::string::npos) {
      return true;
    }
  }
  return false;
}

/// gtest-friendly dump of a report for failure messages.
inline std::string Dump(const AnalysisReport& report) {
  return report.ToString();
}

}  // namespace dmac
