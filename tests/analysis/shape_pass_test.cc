// Golden diagnostics of the shape-inference pass, and the GeneratePlan
// front gate: a shape-mismatched operator list must come back as a
// kDimensionMismatch Status, never an assert or undefined behavior.
#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "analysis_test_util.h"
#include "plan/planner.h"

namespace dmac {
namespace {

Operator Load(int id, const std::string& out, int64_t rows, int64_t cols,
              double sparsity = 1.0) {
  Operator op;
  op.id = id;
  op.kind = OpKind::kLoad;
  op.output = out;
  op.decl_shape = {rows, cols};
  op.decl_sparsity = sparsity;
  op.source = out;
  return op;
}

Operator Binary(int id, OpKind kind, const std::string& a,
                const std::string& b, const std::string& out) {
  Operator op;
  op.id = id;
  op.kind = kind;
  op.inputs = {{a, false}, {b, false}};
  op.output = out;
  return op;
}

/// V(10×20) %*% W(30×5): inner dimensions do not conform.
OperatorList NonConformingMultiply() {
  OperatorList ops;
  ops.ops.push_back(Load(0, "V#1", 10, 20));
  ops.ops.push_back(Load(1, "W#1", 30, 5));
  ops.ops.push_back(Binary(2, OpKind::kMultiply, "V#1", "W#1", "C#1"));
  ops.output_bindings["C"] = {"C#1", false};
  return ops;
}

TEST(ShapePassTest, NonConformingMultiplyIsDiagnosed) {
  const OperatorList ops = NonConformingMultiply();
  const AnalysisReport report = AnalyzeProgram(&ops, nullptr, 4);
  EXPECT_TRUE(HasDiag(report, "shape-inference", Severity::kError,
                      "operand shapes do not conform"))
      << Dump(report);
  // The diagnostic names the offending operator.
  bool named = false;
  for (const Diagnostic& d : report.FromPass("shape-inference")) {
    named |= d.op_id == 2;
  }
  EXPECT_TRUE(named) << Dump(report);
}

TEST(ShapePassTest, GeneratePlanRejectsNonConformingListWithStatus) {
  const OperatorList ops = NonConformingMultiply();
  auto plan = GeneratePlan(ops, PlannerOptions{});
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kDimensionMismatch);
  EXPECT_NE(plan.status().ToString().find("do not conform"),
            std::string::npos);
}

TEST(ShapePassTest, CellwiseShapeMismatchIsDiagnosed) {
  OperatorList ops;
  ops.ops.push_back(Load(0, "A#1", 10, 10));
  ops.ops.push_back(Load(1, "B#1", 10, 11));
  ops.ops.push_back(Binary(2, OpKind::kAdd, "A#1", "B#1", "C#1"));
  ops.output_bindings["C"] = {"C#1", false};

  const AnalysisReport report = AnalyzeProgram(&ops, nullptr, 4);
  EXPECT_TRUE(HasDiag(report, "shape-inference", Severity::kError,
                      "operand shapes differ"))
      << Dump(report);
  auto plan = GeneratePlan(ops, PlannerOptions{});
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kDimensionMismatch);
}

TEST(ShapePassTest, WrongArityIsDiagnosedWithoutCrashing) {
  OperatorList ops;
  ops.ops.push_back(Load(0, "A#1", 10, 10));
  Operator bad;  // a multiply with a single operand
  bad.id = 1;
  bad.kind = OpKind::kMultiply;
  bad.inputs = {{"A#1", false}};
  bad.output = "C#1";
  ops.ops.push_back(bad);
  ops.output_bindings["C"] = {"C#1", false};

  const AnalysisReport report = AnalyzeProgram(&ops, nullptr, 4);
  EXPECT_TRUE(HasDiag(report, "shape-inference", Severity::kError,
                      "has 1 inputs, expected 2"))
      << Dump(report);
  EXPECT_FALSE(GeneratePlan(ops, PlannerOptions{}).ok());
}

TEST(ShapePassTest, NonPositiveDeclaredShapeIsDiagnosed) {
  OperatorList ops;
  ops.ops.push_back(Load(0, "A#1", 0, 10));
  ops.output_bindings["A"] = {"A#1", false};

  const AnalysisReport report = AnalyzeProgram(&ops, nullptr, 4);
  EXPECT_TRUE(HasDiag(report, "shape-inference", Severity::kError,
                      "is not positive"))
      << Dump(report);
  EXPECT_FALSE(GeneratePlan(ops, PlannerOptions{}).ok());
}

TEST(ShapePassTest, ValueReduceOfNon1x1IsDiagnosed) {
  const OperatorList ops = ParseOps(
      "V = load(\"V\", 10, 10, 1)\n"
      "a = value(V)\n"
      "output_scalar(a)\n");
  const AnalysisReport report = AnalyzeProgram(&ops, nullptr, 4);
  EXPECT_TRUE(HasDiag(report, "shape-inference", Severity::kError,
                      ".value requires a 1x1 matrix"))
      << Dump(report);
}

TEST(ShapePassTest, StaleNodeShapeInPlanIsDiagnosed) {
  const OperatorList ops = ParseOps(
      "V = load(\"V\", 200, 100, 1)\n"
      "W = load(\"W\", 100, 50, 1)\n"
      "C = V %*% W\n"
      "output(C)\n");
  Plan plan = MustPlan(ops);
  ASSERT_FALSE(plan.outputs.empty());
  PlanNode& out = plan.nodes[static_cast<size_t>(plan.outputs[0].node)];
  out.stats.shape = {7, 7};  // corrupt the recorded output shape

  const AnalysisReport report = AnalyzeProgram(&ops, &plan, 4);
  EXPECT_TRUE(HasDiag(report, "shape-inference", Severity::kError,
                      "records shape 7x7, inputs imply 200x50"))
      << Dump(report);
  EXPECT_FALSE(VerifyPlan(ops, plan, 4).ok());
}

}  // namespace
}  // namespace dmac
