// Golden diagnostics of the scheme-consistency pass: the Algorithm 1
// invariant that every step's input schemes satisfy its chosen strategy.
// Plans are corrupted *after* planning, the exact failure mode the verifier
// exists for.
#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "analysis_test_util.h"

namespace dmac {
namespace {

const char kTwoMultiplies[] =
    "V = load(\"V\", 100000, 1000, 0.001)\n"
    "w = random(1000, 1)\n"
    "p = V %*% w\n"
    "q = t(V) %*% p\n"
    "output(q)\n";

TEST(SchemePassTest, ValidPlanIsSchemeClean) {
  const OperatorList ops = ParseOps(kTwoMultiplies);
  const Plan plan = MustPlan(ops);
  const AnalysisReport report = AnalyzeProgram(&ops, &plan, 4);
  EXPECT_TRUE(report.FromPass("scheme-consistency").empty()) << Dump(report);
}

TEST(SchemePassTest, FlippedInputSchemeNamesTheOffendingStep) {
  const OperatorList ops = ParseOps(kTwoMultiplies);
  Plan plan = MustPlan(ops);

  // Flip the scheme of a node some compute step actually consumes.
  int victim = -1;
  for (const PlanStep& step : plan.steps) {
    if (step.kind == StepKind::kCompute && !step.inputs.empty()) {
      victim = step.inputs[0];
      break;
    }
  }
  ASSERT_GE(victim, 0);
  PlanNode& node = plan.nodes[static_cast<size_t>(victim)];
  const Scheme flipped = node.scheme() == Scheme::kBroadcast
                             ? Scheme::kRow
                             : OppositeScheme(node.scheme());
  node.schemes = SchemeBit(flipped);

  const AnalysisReport report = AnalyzeProgram(&ops, &plan, 4);
  EXPECT_TRUE(HasDiag(report, "scheme-consistency", Severity::kError,
                      "(id " + std::to_string(victim) + ")"))
      << Dump(report);
  const Status status = VerifyPlan(ops, plan, 4);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("scheme-consistency"), std::string::npos);
}

TEST(SchemePassTest, UncollapsedFlexibleSchemeIsDiagnosed) {
  const OperatorList ops = ParseOps(kTwoMultiplies);
  Plan plan = MustPlan(ops);
  plan.nodes[0].schemes = SchemeBit(Scheme::kRow) | SchemeBit(Scheme::kCol);

  const AnalysisReport report = AnalyzeProgram(&ops, &plan, 4);
  EXPECT_TRUE(HasDiag(report, "scheme-consistency", Severity::kError,
                      "does not carry exactly one scheme"))
      << Dump(report);
}

TEST(SchemePassTest, MultiplyWithoutAnAlgorithmIsDiagnosed) {
  const OperatorList ops = ParseOps(kTwoMultiplies);
  Plan plan = MustPlan(ops);
  bool corrupted = false;
  for (PlanStep& step : plan.steps) {
    if (step.kind == StepKind::kCompute && step.op_kind == OpKind::kMultiply) {
      step.mult_algo = MultAlgo::kNone;
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted);

  const AnalysisReport report = AnalyzeProgram(&ops, &plan, 4);
  EXPECT_TRUE(HasDiag(report, "scheme-consistency", Severity::kError,
                      "multiply step carries no algorithm"))
      << Dump(report);
}

TEST(SchemePassTest, AlteredStrategyOutputSchemeIsDiagnosed) {
  const OperatorList ops = ParseOps(kTwoMultiplies);
  Plan plan = MustPlan(ops);

  // Corrupt the output node of the first multiply: whatever single scheme
  // the strategy produced, the opposite is inconsistent (RMM outputs are
  // never Broadcast, so OppositeScheme always changes it).
  int out_node = -1;
  for (const PlanStep& step : plan.steps) {
    if (step.kind == StepKind::kCompute && step.op_kind == OpKind::kMultiply) {
      out_node = step.output;
      break;
    }
  }
  ASSERT_GE(out_node, 0);
  PlanNode& node = plan.nodes[static_cast<size_t>(out_node)];
  ASSERT_NE(node.scheme(), Scheme::kBroadcast);
  node.schemes = SchemeBit(OppositeScheme(node.scheme()));

  const AnalysisReport report = AnalyzeProgram(&ops, &plan, 4);
  EXPECT_TRUE(report.HasErrors()) << Dump(report);
  EXPECT_FALSE(report.FromPass("scheme-consistency").empty()) << Dump(report);
}

TEST(SchemePassTest, BaselinePlansAreSchemeCleanToo) {
  const OperatorList ops = ParseOps(kTwoMultiplies);
  const Plan plan = MustPlan(ops, 4, /*exploit_dependencies=*/false);
  const AnalysisReport report = AnalyzeProgram(&ops, &plan, 4);
  EXPECT_TRUE(report.FromPass("scheme-consistency").empty()) << Dump(report);
}

}  // namespace
}  // namespace dmac
