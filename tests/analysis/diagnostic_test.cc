#include "analysis/diagnostic.h"

#include <gtest/gtest.h>

namespace dmac {
namespace {

TEST(DiagnosticTest, ToStringRendersSeverityPassOpAndFixit) {
  Diagnostic d{Severity::kError, "scheme-consistency", 3,
               "step s3 requires r", "re-run the planner"};
  EXPECT_EQ(d.ToString(),
            "error: [scheme-consistency] (op 3) step s3 requires r "
            "(fix: re-run the planner)");
}

TEST(DiagnosticTest, ToStringOmitsOpAndFixitWhenAbsent) {
  Diagnostic d{Severity::kWarning, "dependency-graph", -1, "plan is odd", ""};
  EXPECT_EQ(d.ToString(), "warning: [dependency-graph] plan is odd");
}

TEST(DiagnosticTest, SeverityNames) {
  EXPECT_STREQ(SeverityName(Severity::kNote), "note");
  EXPECT_STREQ(SeverityName(Severity::kWarning), "warning");
  EXPECT_STREQ(SeverityName(Severity::kError), "error");
}

AnalysisReport MixedReport() {
  AnalysisReport r;
  r.diagnostics.push_back(
      {Severity::kError, "shape-inference", 1, "bad shape", ""});
  r.diagnostics.push_back(
      {Severity::kWarning, "dependency-graph", 2, "dead op", ""});
  r.diagnostics.push_back(
      {Severity::kNote, "dependency-graph", 3, "dead node", ""});
  r.diagnostics.push_back(
      {Severity::kError, "comm-cost", 4, "wrong bytes", ""});
  return r;
}

TEST(AnalysisReportTest, CountsBySeverity) {
  const AnalysisReport r = MixedReport();
  EXPECT_EQ(r.ErrorCount(), 2);
  EXPECT_EQ(r.WarningCount(), 1);
  EXPECT_TRUE(r.HasErrors());
  EXPECT_FALSE(AnalysisReport{}.HasErrors());
}

TEST(AnalysisReportTest, FromPassFilters) {
  const AnalysisReport r = MixedReport();
  EXPECT_EQ(r.FromPass("dependency-graph").size(), 2u);
  EXPECT_EQ(r.FromPass("comm-cost").size(), 1u);
  EXPECT_TRUE(r.FromPass("alias-safety").empty());
}

TEST(AnalysisReportTest, ToStatusOkWithoutErrors) {
  AnalysisReport r;
  r.diagnostics.push_back(
      {Severity::kWarning, "dependency-graph", 2, "dead op", ""});
  EXPECT_TRUE(r.ToStatus().ok());
}

TEST(AnalysisReportTest, ToStatusMapsShapeErrorsToDimensionMismatch) {
  AnalysisReport r;
  r.diagnostics.push_back(
      {Severity::kError, "shape-inference", 1, "bad shape", ""});
  const Status s = r.ToStatus();
  EXPECT_EQ(s.code(), StatusCode::kDimensionMismatch);
  EXPECT_NE(s.ToString().find("bad shape"), std::string::npos);
}

TEST(AnalysisReportTest, ToStatusMapsOtherErrorsToInvalidArgument) {
  const Status s = MixedReport().ToStatus();
  // The shape error takes precedence here; a pure scheme error maps to
  // kInvalidArgument.
  AnalysisReport scheme_only;
  scheme_only.diagnostics.push_back(
      {Severity::kError, "scheme-consistency", 1, "bad scheme", ""});
  EXPECT_EQ(scheme_only.ToStatus().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(s.ok());
}

TEST(AnalysisReportTest, ToStringListsEveryDiagnosticAndASummary) {
  const std::string s = MixedReport().ToString();
  EXPECT_NE(s.find("bad shape"), std::string::npos);
  EXPECT_NE(s.find("dead op"), std::string::npos);
  EXPECT_NE(s.find("2 error(s), 1 warning(s)"), std::string::npos);
}

}  // namespace
}  // namespace dmac
