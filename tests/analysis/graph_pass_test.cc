// Golden diagnostics of the dependency-graph pass: SSA discipline over the
// operator list, and producer/consumer ordering over the plan.
#include <gtest/gtest.h>

#include <utility>

#include "analysis/analyzer.h"
#include "analysis_test_util.h"
#include "plan/planner.h"

namespace dmac {
namespace {

Operator Load(int id, const std::string& out, int64_t rows, int64_t cols) {
  Operator op;
  op.id = id;
  op.kind = OpKind::kLoad;
  op.output = out;
  op.decl_shape = {rows, cols};
  op.source = out;
  return op;
}

TEST(GraphPassTest, UseBeforeDefIsDiagnosed) {
  OperatorList ops;
  Operator mul;
  mul.id = 0;
  mul.kind = OpKind::kMultiply;
  mul.inputs = {{"A#1", false}, {"B#1", false}};  // neither is defined
  mul.output = "C#1";
  ops.ops.push_back(mul);
  ops.output_bindings["C"] = {"C#1", false};

  const AnalysisReport report = AnalyzeProgram(&ops, nullptr, 4);
  EXPECT_TRUE(HasDiag(report, "dependency-graph", Severity::kError,
                      "is not defined by any earlier operator"))
      << Dump(report);
  // GeneratePlan's front gate turns this into a Status, not UB.
  EXPECT_FALSE(GeneratePlan(ops, PlannerOptions{}).ok());
}

TEST(GraphPassTest, SsaRedefinitionIsDiagnosed) {
  OperatorList ops;
  ops.ops.push_back(Load(0, "A#1", 10, 10));
  ops.ops.push_back(Load(1, "A#1", 10, 10));  // redefines A#1
  ops.output_bindings["A"] = {"A#1", false};

  const AnalysisReport report = AnalyzeProgram(&ops, nullptr, 4);
  EXPECT_TRUE(HasDiag(report, "dependency-graph", Severity::kError,
                      "redefines SSA matrix A#1"))
      << Dump(report);
}

TEST(GraphPassTest, DeadOperatorIsAWarningNotAnError) {
  OperatorList ops;
  ops.ops.push_back(Load(0, "A#1", 10, 10));
  ops.ops.push_back(Load(1, "B#1", 10, 10));  // never consumed, not output
  ops.output_bindings["A"] = {"A#1", false};

  const AnalysisReport report = AnalyzeProgram(&ops, nullptr, 4);
  EXPECT_TRUE(HasDiag(report, "dependency-graph", Severity::kWarning,
                      "is never consumed"))
      << Dump(report);
  EXPECT_FALSE(report.HasErrors()) << Dump(report);
  // Warnings do not fail planning.
  PlannerOptions opts;
  opts.verify_plan = true;
  EXPECT_TRUE(GeneratePlan(ops, opts).ok());
}

const char kSmallProgram[] =
    "V = load(\"V\", 50000, 2000, 0.001)\n"
    "w = random(2000, 1)\n"
    "p = V %*% w\n"
    "q = t(V) %*% p\n"
    "output(q)\n";

TEST(GraphPassTest, StepReadingOutsideNodeTableIsDiagnosed) {
  const OperatorList ops = ParseOps(kSmallProgram);
  Plan plan = MustPlan(ops);
  ASSERT_FALSE(plan.steps.empty());
  PlanStep* compute = nullptr;
  for (PlanStep& step : plan.steps) {
    if (!step.inputs.empty()) compute = &step;
  }
  ASSERT_NE(compute, nullptr);
  compute->inputs[0] = 999;  // out of range

  const AnalysisReport report = AnalyzeProgram(&ops, &plan, 4);
  EXPECT_TRUE(HasDiag(report, "dependency-graph", Severity::kError,
                      "outside the node table"))
      << Dump(report);
}

TEST(GraphPassTest, ConsumerBeforeProducerIsDiagnosed) {
  const OperatorList ops = ParseOps(kSmallProgram);
  Plan plan = MustPlan(ops);

  // Swap a producer in front of its consumer: find a step whose input node
  // is produced by an earlier step and exchange the two.
  int producer_pos = -1, consumer_pos = -1;
  for (size_t i = 0; i < plan.steps.size() && consumer_pos < 0; ++i) {
    for (int input : plan.steps[i].inputs) {
      const int producer = plan.nodes[static_cast<size_t>(input)].producer_step;
      for (size_t j = 0; j < i; ++j) {
        if (plan.steps[j].id == producer) {
          producer_pos = static_cast<int>(j);
          consumer_pos = static_cast<int>(i);
          break;
        }
      }
      if (consumer_pos >= 0) break;
    }
  }
  ASSERT_GE(consumer_pos, 0);
  std::swap(plan.steps[static_cast<size_t>(producer_pos)],
            plan.steps[static_cast<size_t>(consumer_pos)]);

  const AnalysisReport report = AnalyzeProgram(&ops, &plan, 4);
  EXPECT_TRUE(HasDiag(report, "dependency-graph", Severity::kError,
                      "before its producer step"))
      << Dump(report);
}

TEST(GraphPassTest, DoubleProducerIsDiagnosed) {
  const OperatorList ops = ParseOps(kSmallProgram);
  Plan plan = MustPlan(ops);
  // Make the second step claim the first step's output node as well.
  ASSERT_GE(plan.steps.size(), 2u);
  ASSERT_GE(plan.steps[0].output, 0);
  plan.steps[1].output = plan.steps[0].output;

  const AnalysisReport report = AnalyzeProgram(&ops, &plan, 4);
  EXPECT_TRUE(HasDiag(report, "dependency-graph", Severity::kError,
                      "already produced by step"))
      << Dump(report);
}

TEST(GraphPassTest, CleanProgramHasNoGraphFindings) {
  const OperatorList ops = ParseOps(kSmallProgram);
  const Plan plan = MustPlan(ops);
  const AnalysisReport report = AnalyzeProgram(&ops, &plan, 4);
  for (const Diagnostic& d : report.FromPass("dependency-graph")) {
    EXPECT_NE(d.severity, Severity::kError) << d.ToString();
  }
}

}  // namespace
}  // namespace dmac
