// FaultInjector determinism and budgets; checksums and CorruptedCopy.
#include "fault/injector.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fault/checksum.h"
#include "matrix/block.h"

namespace dmac {
namespace {

FaultSpec NoisySpec(uint64_t seed) {
  FaultSpec spec;
  spec.enabled = true;
  spec.seed = seed;
  spec.crash_prob = 0.2;
  spec.lost_block_prob = 0.1;
  spec.corrupt_prob = 0.1;
  spec.transient_prob = 0.3;
  spec.straggler_prob = 0.2;
  spec.straggler_delay_seconds = 0.05;
  return spec;
}

/// Replays a fixed draw sequence and serializes every verdict.
std::string DrawTranscript(const FaultSpec& spec) {
  FaultInjector injector(spec);
  std::string transcript;
  for (int step = 0; step < 20; ++step) {
    int worker = -1;
    transcript += injector.DrawCrash(4, &worker) ? 'C' : '.';
    transcript += std::to_string(worker);
    transcript += injector.DrawLostBlock() ? 'L' : '.';
    transcript += injector.DrawCorruptBlock() ? 'X' : '.';
    transcript += injector.DrawTransientFailure(step) ? 'T' : '.';
    transcript += std::to_string(injector.DrawStragglerDelay() > 0);
  }
  return transcript;
}

TEST(FaultInjectorTest, SameSeedReplaysTheSameSchedule) {
  const std::string a = DrawTranscript(NoisySpec(11));
  const std::string b = DrawTranscript(NoisySpec(11));
  EXPECT_EQ(a, b);
}

TEST(FaultInjectorTest, DifferentSeedsDrawDifferentSchedules) {
  // With 120 Bernoulli draws per transcript, a collision across all five
  // seeds would mean the RNG ignores its seed.
  const std::string base = DrawTranscript(NoisySpec(1));
  bool any_different = false;
  for (uint64_t seed : {2u, 3u, 4u, 5u, 6u}) {
    any_different = any_different || DrawTranscript(NoisySpec(seed)) != base;
  }
  EXPECT_TRUE(any_different);
}

TEST(FaultInjectorTest, ZeroProbabilitiesNeverFire) {
  FaultSpec spec;
  spec.enabled = true;
  FaultInjector injector(spec);
  for (int i = 0; i < 100; ++i) {
    int worker = -1;
    EXPECT_FALSE(injector.DrawCrash(4, &worker));
    EXPECT_FALSE(injector.DrawLostBlock());
    EXPECT_FALSE(injector.DrawCorruptBlock());
    EXPECT_FALSE(injector.DrawTransientFailure(0));
    EXPECT_DOUBLE_EQ(injector.DrawStragglerDelay(), 0);
  }
  EXPECT_EQ(injector.faults_drawn(), 0);
}

TEST(FaultInjectorTest, TransientBudgetStopsAtMaxRetries) {
  FaultSpec spec;
  spec.enabled = true;
  spec.transient_prob = 1.0;  // would otherwise fail every launch forever
  spec.max_retries = 3;
  FaultInjector injector(spec);
  int failures = 0;
  for (int launch = 0; launch < 50; ++launch) {
    if (injector.DrawTransientFailure(/*step_id=*/7)) ++failures;
  }
  // The budget guarantees a transient fault resolves within the retry
  // bound: at most max_retries injected failures per step.
  EXPECT_EQ(failures, 3);
  // Other steps have their own budget.
  EXPECT_TRUE(injector.DrawTransientFailure(/*step_id=*/8));
}

TEST(FaultInjectorTest, PermanentFailStepBypassesTheBudget) {
  FaultSpec spec;
  spec.enabled = true;
  spec.max_retries = 2;
  spec.permanent_fail_step = 5;
  FaultInjector injector(spec);
  for (int launch = 0; launch < 20; ++launch) {
    EXPECT_TRUE(injector.DrawTransientFailure(5));
  }
  EXPECT_FALSE(injector.DrawTransientFailure(4));
}

TEST(FaultInjectorTest, CrashPicksAValidWorker) {
  FaultSpec spec;
  spec.enabled = true;
  spec.crash_prob = 1.0;
  FaultInjector injector(spec);
  for (int i = 0; i < 50; ++i) {
    int worker = -1;
    ASSERT_TRUE(injector.DrawCrash(3, &worker));
    EXPECT_GE(worker, 0);
    EXPECT_LT(worker, 3);
  }
}

// ---- checksums ----------------------------------------------------------

TEST(ChecksumTest, SensitiveToEveryPayloadByte) {
  Block block = RandomDenseBlock(8, 8, 42);
  const uint64_t before = BlockChecksum(block);
  EXPECT_NE(before, kNoChecksum);
  block.dense().Set(3, 4, block.dense().At(3, 4) + 1e-6f);
  EXPECT_NE(BlockChecksum(block), before);
}

TEST(ChecksumTest, RepresentationIsPartOfTheHash) {
  const Block sparse = RandomSparseBlock(16, 16, 0.2, 9);
  const Block dense = Block(sparse.ToDense());
  // Same values, different storage: a block must round-trip bit-identically
  // (including its representation) to verify.
  EXPECT_NE(BlockChecksum(sparse), BlockChecksum(dense));
  EXPECT_EQ(BlockChecksum(sparse), BlockChecksum(Block(dense.ToSparse())));
}

TEST(ChecksumTest, FnvIsStableAndOrderSensitive) {
  const char data[] = "abcd";
  const uint64_t h1 = Fnv1a(data, 4, 1469598103934665603ull);
  EXPECT_EQ(h1, Fnv1a(data, 4, 1469598103934665603ull));
  const char swapped[] = "abdc";
  EXPECT_NE(h1, Fnv1a(swapped, 4, 1469598103934665603ull));
}

// ---- corrupted copies ---------------------------------------------------

TEST(CorruptedCopyTest, DenseCorruptionIsDetectableOnlyByChecksum) {
  const Block original = RandomDenseBlock(8, 6, 3);
  const Block corrupt = CorruptedCopy(original, 77);
  EXPECT_EQ(corrupt.rows(), original.rows());
  EXPECT_EQ(corrupt.cols(), original.cols());
  EXPECT_EQ(corrupt.kind(), original.kind());
  EXPECT_NE(BlockChecksum(corrupt), BlockChecksum(original));
}

TEST(CorruptedCopyTest, SparseCorruptionChangesTheChecksum) {
  const Block original = RandomSparseBlock(16, 16, 0.2, 5);
  const Block corrupt = CorruptedCopy(original, 13);
  EXPECT_EQ(corrupt.kind(), BlockKind::kSparse);
  EXPECT_NE(BlockChecksum(corrupt), BlockChecksum(original));
}

TEST(CorruptedCopyTest, EmptySparseBlockStillCorrupts) {
  const Block original = RandomSparseBlock(8, 8, 0.0, 5);
  ASSERT_EQ(original.nnz(), 0);
  const Block corrupt = CorruptedCopy(original, 21);
  EXPECT_NE(BlockChecksum(corrupt), BlockChecksum(original));
}

TEST(CorruptedCopyTest, DoesNotMutateTheOriginal) {
  const Block original = RandomDenseBlock(4, 4, 8);
  const uint64_t before = BlockChecksum(original);
  (void)CorruptedCopy(original, 99);
  EXPECT_EQ(BlockChecksum(original), before);
}

}  // namespace
}  // namespace dmac
