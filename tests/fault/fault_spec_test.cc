// FaultSpec defaults, validation, and the key = value file format.
#include "fault/fault_spec.h"

#include <gtest/gtest.h>

namespace dmac {
namespace {

TEST(FaultSpecTest, DefaultIsDisabledAndValid) {
  FaultSpec spec;
  EXPECT_FALSE(spec.enabled);
  EXPECT_FALSE(spec.AnyFaultPossible());
  EXPECT_TRUE(spec.Validate().ok());
}

TEST(FaultSpecTest, AnyFaultPossibleCoversEveryKnob) {
  FaultSpec spec;
  EXPECT_FALSE(spec.AnyFaultPossible());
  spec.crash_prob = 0.1;
  EXPECT_TRUE(spec.AnyFaultPossible());
  spec = FaultSpec{};
  spec.permanent_fail_step = 3;
  EXPECT_TRUE(spec.AnyFaultPossible());
  spec = FaultSpec{};
  spec.straggler_prob = 0.5;
  EXPECT_TRUE(spec.AnyFaultPossible());
}

TEST(FaultSpecTest, ValidateRejectsOutOfRangeKnobs) {
  FaultSpec spec;
  spec.crash_prob = 1.5;
  EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);
  spec = FaultSpec{};
  spec.corrupt_prob = -0.1;
  EXPECT_FALSE(spec.Validate().ok());
  spec = FaultSpec{};
  spec.max_retries = -1;
  EXPECT_FALSE(spec.Validate().ok());
  spec = FaultSpec{};
  spec.backoff_base_seconds = -1;
  EXPECT_FALSE(spec.Validate().ok());
}

TEST(FaultSpecTest, ParsesKeysCommentsAndBlanks) {
  auto spec = ParseFaultSpec(
      "# smoke schedule\n"
      "seed = 7\n"
      "crash_prob = 0.02   # one worker per ~50 steps\n"
      "\n"
      "lost_block_prob = 0.001\n"
      "corrupt_prob = 0.0005\n"
      "transient_prob = 0.01\n"
      "straggler_prob = 0.1\n"
      "straggler_delay_seconds = 0.25\n"
      "speculate = false\n"
      "max_retries = 6\n"
      "backoff_base_seconds = 0.5\n"
      "permanent_fail_step = 9\n");
  ASSERT_TRUE(spec.ok()) << spec.status();
  // Writing a spec file is the opt-in: parsed specs default enabled.
  EXPECT_TRUE(spec->enabled);
  EXPECT_EQ(spec->seed, 7u);
  EXPECT_DOUBLE_EQ(spec->crash_prob, 0.02);
  EXPECT_DOUBLE_EQ(spec->lost_block_prob, 0.001);
  EXPECT_DOUBLE_EQ(spec->corrupt_prob, 0.0005);
  EXPECT_DOUBLE_EQ(spec->transient_prob, 0.01);
  EXPECT_DOUBLE_EQ(spec->straggler_prob, 0.1);
  EXPECT_DOUBLE_EQ(spec->straggler_delay_seconds, 0.25);
  EXPECT_FALSE(spec->speculate);
  EXPECT_EQ(spec->max_retries, 6);
  EXPECT_DOUBLE_EQ(spec->backoff_base_seconds, 0.5);
  EXPECT_EQ(spec->permanent_fail_step, 9);
}

TEST(FaultSpecTest, ExplicitEnabledFalseWins) {
  auto spec = ParseFaultSpec("enabled = false\ncrash_prob = 0.5\n");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(spec->enabled);
}

TEST(FaultSpecTest, RejectsUnknownKeys) {
  auto spec = ParseFaultSpec("crash_probability = 0.5\n");
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().ToString().find("unknown key"), std::string::npos)
      << spec.status();
}

TEST(FaultSpecTest, RejectsMalformedLinesAndValues) {
  EXPECT_FALSE(ParseFaultSpec("crash_prob\n").ok());
  EXPECT_FALSE(ParseFaultSpec("crash_prob = lots\n").ok());
  EXPECT_FALSE(ParseFaultSpec("speculate = maybe\n").ok());
  // Parse runs Validate: a well-formed but out-of-range spec is rejected.
  EXPECT_FALSE(ParseFaultSpec("crash_prob = 2.0\n").ok());
}

TEST(FaultSpecTest, ParsesDeathAndNetworkKeys) {
  auto spec = ParseFaultSpec(
      "seed = 11\n"
      "death_prob = 0.05\n"
      "death_step = 4\n"
      "death_worker = 2\n"
      "death_in_flight = true\n"
      "net_drop_prob = 0.1\n"
      "net_dup_prob = 0.2\n"
      "net_reorder_prob = 0.15\n"
      "net_delay_prob = 0.05\n"
      "net_delay_seconds = 0.01\n"
      "net_partition_prob = 0.02\n"
      "net_partition_drops = 6\n");
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_DOUBLE_EQ(spec->death_prob, 0.05);
  EXPECT_EQ(spec->death_step, 4);
  EXPECT_EQ(spec->death_worker, 2);
  EXPECT_TRUE(spec->death_in_flight);
  EXPECT_DOUBLE_EQ(spec->net.drop_prob, 0.1);
  EXPECT_DOUBLE_EQ(spec->net.dup_prob, 0.2);
  EXPECT_DOUBLE_EQ(spec->net.reorder_prob, 0.15);
  EXPECT_DOUBLE_EQ(spec->net.delay_prob, 0.05);
  EXPECT_DOUBLE_EQ(spec->net.delay_seconds, 0.01);
  EXPECT_DOUBLE_EQ(spec->net.partition_prob, 0.02);
  EXPECT_EQ(spec->net.partition_drops, 6);
  EXPECT_TRUE(spec->AnyFaultPossible());
  EXPECT_TRUE(spec->net.Any());
}

TEST(FaultSpecTest, DeathAndNetworkKnobsCountAsFaultPossible) {
  FaultSpec spec;
  spec.death_prob = 0.01;
  EXPECT_TRUE(spec.AnyFaultPossible());
  spec = FaultSpec{};
  spec.death_step = 3;
  EXPECT_TRUE(spec.AnyFaultPossible());
  spec = FaultSpec{};
  EXPECT_FALSE(spec.net.Any());
  spec.net.reorder_prob = 0.1;
  EXPECT_TRUE(spec.net.Any());
  EXPECT_TRUE(spec.AnyFaultPossible());
}

TEST(FaultSpecTest, ValidateRejectsBadDeathAndNetworkKnobs) {
  FaultSpec spec;
  spec.death_prob = 1.5;
  EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);
  spec = FaultSpec{};
  spec.death_step = 3;
  spec.death_worker = -1;
  EXPECT_FALSE(spec.Validate().ok());
  spec = FaultSpec{};
  spec.net.drop_prob = -0.5;
  EXPECT_FALSE(spec.Validate().ok());
  spec = FaultSpec{};
  spec.net.delay_seconds = -1;
  EXPECT_FALSE(spec.Validate().ok());
  spec = FaultSpec{};
  spec.net.partition_drops = 0;
  EXPECT_FALSE(spec.Validate().ok());
  EXPECT_FALSE(ParseFaultSpec("net_drop_prob = 2.0\n").ok());
  EXPECT_FALSE(ParseFaultSpec("net_dropp_prob = 0.1\n").ok());
}

TEST(FaultSpecTest, ParsesDiskFaultAndCrashKnobs) {
  auto spec = ParseFaultSpec(
      "seed = 9\n"
      "disk_short_write_prob = 0.05\n"
      "disk_read_flip_prob = 0.01\n"
      "disk_enospc_prob = 0.02\n"
      "disk_fsync_fail_prob = 0.03\n"
      "crash_at = 4\n"
      "crash_soft = true\n");
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->disk.short_write_prob, 0.05);
  EXPECT_EQ(spec->disk.read_flip_prob, 0.01);
  EXPECT_EQ(spec->disk.enospc_prob, 0.02);
  EXPECT_EQ(spec->disk.fsync_fail_prob, 0.03);
  EXPECT_EQ(spec->disk.crash_at, 4);
  EXPECT_TRUE(spec->disk.crash_soft);
  EXPECT_TRUE(spec->disk.Any());
  // Disk faults inject at the storage layer, not through the step-level
  // injector: they do not make AnyFaultPossible() true on their own.
  EXPECT_FALSE(spec->AnyFaultPossible());
}

TEST(FaultSpecTest, ValidateRejectsBadDiskKnobs) {
  FaultSpec spec;
  spec.disk.short_write_prob = 1.5;
  EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);
  spec = FaultSpec{};
  spec.disk.read_flip_prob = -0.1;
  EXPECT_FALSE(spec.Validate().ok());
  spec = FaultSpec{};
  spec.disk.crash_at = 0;  // 1-based; 0 would crash before any write
  EXPECT_FALSE(spec.Validate().ok());
  spec = FaultSpec{};
  spec.disk.crash_at = -1;  // disabled
  EXPECT_TRUE(spec.Validate().ok());
  EXPECT_FALSE(ParseFaultSpec("disk_enospc_prob = 2.0\n").ok());
  EXPECT_FALSE(ParseFaultSpec("disk_enospcc_prob = 0.1\n").ok());
}

TEST(FaultSpecTest, ShippedCrashRestartSpecParses) {
  auto spec =
      LoadFaultSpecFile(DMAC_SOURCE_DIR "/scripts/faults/crash_restart.spec");
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_TRUE(spec->disk.Any());
  EXPECT_GT(spec->disk.short_write_prob, 0);
  EXPECT_GT(spec->disk.enospc_prob, 0);
  EXPECT_GT(spec->disk.fsync_fail_prob, 0);
  EXPECT_GT(spec->disk.read_flip_prob, 0);
  EXPECT_EQ(spec->disk.crash_at, 4);
  // Hard crash (exit 42): the crash-loop harness's contract.
  EXPECT_FALSE(spec->disk.crash_soft);
  EXPECT_TRUE(spec->Validate().ok());
}

TEST(FaultSpecTest, LoadMissingFileIsNotFound) {
  auto spec = LoadFaultSpecFile("/nonexistent/faults.spec");
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace dmac
