// Crash-restart resumption: a run killed at *every* durable write point in
// turn, then resumed, must converge to outputs bit-identical to an
// uninterrupted run — across workloads and seeds — leaving zero stale or
// partial checkpoint files behind. Plus the disk-fault identity sweep:
// write-side faults may fail epoch commits, but a run that completes must
// still be bit-identical.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "apps/runner.h"
#include "common/status.h"
#include "fault_test_util.h"

namespace dmac {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  explicit TempDir(const std::string& tag) {
    path = (fs::temp_directory_path() /
            ("dmac_resume_" + tag + "_" + std::to_string(::getpid())))
               .string();
    fs::remove_all(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

RunConfig BaseConfig(uint64_t seed) {
  RunConfig config;
  config.num_workers = 3;
  config.threads_per_worker = 2;
  config.block_size = kFaultBs;
  config.seed = seed;
  return config;
}

/// The in-process analogue of the crash-loop harness: run with a soft
/// crash at write point n = 1, 2, ... resuming each time, until a run
/// completes. Returns the completed result.
ExecutionResult CrashLoop(const FaultAppCase& app, const RunConfig& base,
                          const std::string& ckpt_dir, int* iterations) {
  for (int n = 1; n <= 500; ++n) {
    RunConfig config = base;
    config.checkpoint_dir = ckpt_dir;
    config.resume = true;
    config.fault.disk.crash_at = n;
    config.fault.disk.crash_soft = true;
    auto run = RunProgram(app.program, app.MakeBindings(), config);
    if (run.ok()) {
      *iterations = n;
      return std::move(run->result);
    }
    // Anything but the injected crash is a harness failure.
    EXPECT_EQ(run.status().code(), StatusCode::kInternal)
        << "crash point " << n << ": " << run.status();
  }
  ADD_FAILURE() << "crash loop did not converge within 500 points";
  return {};
}

TEST(ResumeTest, KillAtEveryWritePointConvergesBitIdentically) {
  for (const FaultAppCase& app : {MakeSmallGnmf(), MakeSmallPageRank()}) {
    for (uint64_t seed : {uint64_t{1}, uint64_t{17}}) {
      const RunConfig base = BaseConfig(seed);
      auto clean = RunProgram(app.program, app.MakeBindings(), base);
      ASSERT_TRUE(clean.ok()) << clean.status();

      TempDir dir(app.name + "_s" + std::to_string(seed));
      int iterations = 0;
      ExecutionResult resumed = CrashLoop(app, base, dir.path, &iterations);
      EXPECT_GT(iterations, 1)
          << app.name << " seed " << seed
          << ": the loop never actually crashed (no durable writes?)";
      ExpectBitIdentical(clean->result, resumed,
                         app.name + " seed " + std::to_string(seed) +
                             " after " + std::to_string(iterations) +
                             " crash-resume iterations");

      // Zero stale or partial files: only the final epoch's manifest and
      // its referenced blocks remain.
      int64_t manifests = 0;
      for (const auto& entry : fs::directory_iterator(dir.path)) {
        const std::string name = entry.path().filename().string();
        EXPECT_EQ(name.find(".tmp"), std::string::npos)
            << "partial file " << name << " leaked";
        if (name.rfind("manifest-", 0) == 0) ++manifests;
      }
      EXPECT_EQ(manifests, 1);
    }
  }
}

TEST(ResumeTest, ResumeAfterCompletionReExecutesNothing) {
  const FaultAppCase app = MakeSmallGnmf();
  const RunConfig base = BaseConfig(3);
  TempDir dir("completed");

  RunConfig durable = base;
  durable.checkpoint_dir = dir.path;
  auto first = RunProgram(app.program, app.MakeBindings(), durable);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_GT(first->result.stats.durable_epochs, 0);

  durable.resume = true;
  auto again = RunProgram(app.program, app.MakeBindings(), durable);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_TRUE(again->result.stats.resumed);
  // Everything came off disk: no compute steps re-ran, no new epochs.
  EXPECT_EQ(again->result.stats.durable_epochs, 0);
  EXPECT_EQ(again->result.stats.comm_bytes(), 0);
  ExpectBitIdentical(first->result, again->result, "resume after completion");
}

TEST(ResumeTest, ResumeWithFreshDirectoryIsAPlainFullRun) {
  const FaultAppCase app = MakeSmallPageRank();
  const RunConfig base = BaseConfig(5);
  auto clean = RunProgram(app.program, app.MakeBindings(), base);
  ASSERT_TRUE(clean.ok()) << clean.status();

  TempDir dir("freshdir");
  RunConfig config = base;
  config.checkpoint_dir = dir.path;
  config.resume = true;
  auto run = RunProgram(app.program, app.MakeBindings(), config);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_FALSE(run->result.stats.resumed);
  ExpectBitIdentical(clean->result, run->result, "resume from fresh dir");
}

TEST(ResumeTest, ResumeFromTheWrongPlanFailsClean) {
  const FaultAppCase gnmf = MakeSmallGnmf();
  const FaultAppCase pagerank = MakeSmallPageRank();
  const RunConfig base = BaseConfig(11);
  TempDir dir("wrongplan");

  RunConfig durable = base;
  durable.checkpoint_dir = dir.path;
  ASSERT_TRUE(
      RunProgram(gnmf.program, gnmf.MakeBindings(), durable).ok());

  durable.resume = true;
  auto run = RunProgram(pagerank.program, pagerank.MakeBindings(), durable);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument)
      << run.status();
}

/// Disk-fault identity sweep: write-side faults (short writes, ENOSPC,
/// fsync failures) fail individual epoch commits, which the run absorbs by
/// carrying on from the previous epoch. Completed runs must stay
/// bit-identical; the commit failures must be visible in the stats.
TEST(ResumeTest, WriteFaultSweepKeepsCompletedRunsBitIdentical) {
  for (const FaultAppCase& app : {MakeSmallGnmf(), MakeSmallPageRank()}) {
    const RunConfig base = BaseConfig(23);
    auto clean = RunProgram(app.program, app.MakeBindings(), base);
    ASSERT_TRUE(clean.ok()) << clean.status();

    int64_t failures_seen = 0;
    for (uint64_t seed : {uint64_t{1}, uint64_t{2}, uint64_t{3}}) {
      TempDir dir(app.name + "_sweep" + std::to_string(seed));
      RunConfig config = base;
      config.checkpoint_dir = dir.path;
      config.fault.seed = seed;
      config.fault.disk.short_write_prob = 0.2;
      config.fault.disk.enospc_prob = 0.1;
      config.fault.disk.fsync_fail_prob = 0.1;
      auto run = RunProgram(app.program, app.MakeBindings(), config);
      ASSERT_TRUE(run.ok()) << run.status();
      EXPECT_GT(run->result.stats.disk_faults_injected, 0);
      failures_seen += run->result.stats.checkpoint_failures;
      ExpectBitIdentical(clean->result, run->result,
                         app.name + " disk-fault seed " +
                             std::to_string(seed));
    }
    EXPECT_GT(failures_seen, 0) << app.name;
  }
}

/// A read-side bit flip at resume is detected by checksum verification:
/// Open falls back or fails kDataLoss — a resumed run never silently
/// diverges.
TEST(ResumeTest, ReadFlipAtResumeNeverSilentlyDiverges) {
  const FaultAppCase app = MakeSmallGnmf();
  const RunConfig base = BaseConfig(29);
  auto clean = RunProgram(app.program, app.MakeBindings(), base);
  ASSERT_TRUE(clean.ok()) << clean.status();

  for (uint64_t seed = 1; seed <= 4; ++seed) {
    TempDir dir("flip" + std::to_string(seed));
    RunConfig durable = base;
    durable.checkpoint_dir = dir.path;
    ASSERT_TRUE(RunProgram(app.program, app.MakeBindings(), durable).ok());

    RunConfig config = durable;
    config.resume = true;
    config.fault.seed = seed;
    config.fault.disk.read_flip_prob = 0.3;
    auto run = RunProgram(app.program, app.MakeBindings(), config);
    if (run.ok()) {
      ExpectBitIdentical(clean->result, run->result,
                         "read-flip seed " + std::to_string(seed));
    } else {
      EXPECT_EQ(run.status().code(), StatusCode::kDataLoss) << run.status();
    }
  }
}

}  // namespace
}  // namespace dmac
