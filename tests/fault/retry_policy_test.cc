// RetryPolicy unit tests: backoff arithmetic (including the legacy
// executor-compatible configuration), the cap, deterministic jitter, and
// budget exhaustion semantics.
#include "fault/retry_policy.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dmac {
namespace {

TEST(RetryPolicyTest, DefaultConfigMatchesLegacyExecutorArithmetic) {
  RetryPolicy p;
  p.base_seconds = 0.01;
  for (int attempt = 0; attempt < 8; ++attempt) {
    EXPECT_DOUBLE_EQ(p.BackoffSeconds(attempt),
                     0.01 * std::ldexp(1.0, attempt))
        << "attempt " << attempt;
  }
  // The exponent clamps at 40 so pathological budgets stay finite.
  EXPECT_DOUBLE_EQ(p.BackoffSeconds(100), 0.01 * std::ldexp(1.0, 40));
  // Negative attempts clamp to the base delay.
  EXPECT_DOUBLE_EQ(p.BackoffSeconds(-3), 0.01);
}

TEST(RetryPolicyTest, NonPowerOfTwoMultiplier) {
  RetryPolicy p;
  p.base_seconds = 1.0;
  p.multiplier = 3.0;
  EXPECT_DOUBLE_EQ(p.BackoffSeconds(0), 1.0);
  EXPECT_DOUBLE_EQ(p.BackoffSeconds(2), 9.0);
}

TEST(RetryPolicyTest, CapBoundsEveryDelay) {
  RetryPolicy p;
  p.base_seconds = 0.5;
  p.cap_seconds = 2.0;
  EXPECT_DOUBLE_EQ(p.BackoffSeconds(0), 0.5);
  EXPECT_DOUBLE_EQ(p.BackoffSeconds(1), 1.0);
  EXPECT_DOUBLE_EQ(p.BackoffSeconds(2), 2.0);  // capped
  EXPECT_DOUBLE_EQ(p.BackoffSeconds(30), 2.0);
}

TEST(RetryPolicyTest, JitterIsDeterministicAndBounded) {
  RetryPolicy a;
  a.base_seconds = 1.0;
  a.jitter_fraction = 0.25;
  a.jitter_seed = 7;
  RetryPolicy b = a;
  bool any_jitter = false;
  for (int attempt = 0; attempt < 10; ++attempt) {
    const double base = std::ldexp(1.0, attempt);
    const double da = a.BackoffSeconds(attempt);
    // Same seed, same attempt -> bit-equal delay (the property the
    // bit-identity sweeps rely on).
    EXPECT_EQ(da, b.BackoffSeconds(attempt)) << "attempt " << attempt;
    EXPECT_GE(da, base);
    EXPECT_LT(da, base * 1.25);
    if (da != base) any_jitter = true;
  }
  EXPECT_TRUE(any_jitter);
  // A different seed perturbs the schedule.
  RetryPolicy c = a;
  c.jitter_seed = 8;
  bool any_diff = false;
  for (int attempt = 0; attempt < 10; ++attempt) {
    if (c.BackoffSeconds(attempt) != a.BackoffSeconds(attempt)) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(RetryPolicyTest, RetryableSetIsUnavailableAndDataLoss) {
  EXPECT_TRUE(RetryPolicy::Retryable(Status::Unavailable("x")));
  EXPECT_TRUE(RetryPolicy::Retryable(Status::DataLoss("x")));
  EXPECT_FALSE(RetryPolicy::Retryable(Status::Internal("x")));
  EXPECT_FALSE(RetryPolicy::Retryable(Status::Invalid("x")));
  EXPECT_FALSE(RetryPolicy::Retryable(Status::Ok()));
}

TEST(RetryPolicyTest, ShouldRetryExhaustsTheBudget) {
  RetryPolicy p;
  p.max_retries = 2;
  const Status transient = Status::Unavailable("flaky");
  EXPECT_TRUE(p.ShouldRetry(transient, 0));
  EXPECT_TRUE(p.ShouldRetry(transient, 1));
  EXPECT_FALSE(p.ShouldRetry(transient, 2));  // budget spent -> kUnavailable
  EXPECT_FALSE(p.ShouldRetry(Status::Internal("fatal"), 0));
}

}  // namespace
}  // namespace dmac
