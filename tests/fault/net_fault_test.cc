// Message-level network fault injection (docs/fault_tolerance.md).
//
// Unit tests drive SimNetwork directly: guaranteed delivery under drops,
// duplicate suppression, sorted (sender, sequence) delivery, and the
// stale-epoch fence. The end-to-end sweep then runs GNMF and PageRank under
// duplicate-heavy, reorder-heavy, drop-heavy, delay, and transient-partition
// specs across ten injector seeds each, asserting the outputs stay
// bit-identical to the fault-free run while only fault.net.* accounting
// moves.
#include "runtime/network.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/runner.h"
#include "fault/injector.h"
#include "fault/retry_policy.h"
#include "fault_test_util.h"
#include "runtime/membership.h"

namespace dmac {
namespace {

TEST(SimNetworkTest, CleanNetworkDeliversInSenderSequenceOrder) {
  SimNetwork net(nullptr, nullptr, RetryPolicy{});
  std::vector<int> order;
  // Queue out of sender order; delivery must be (from, to, seq) sorted.
  net.Send(2, 0, 8, [&] { order.push_back(20); });
  net.Send(0, 0, 8, [&] { order.push_back(1); });
  net.Send(0, 0, 8, [&] { order.push_back(2); });
  net.Send(1, 0, 8, [&] { order.push_back(10); });
  ASSERT_TRUE(net.pending());
  ASSERT_TRUE(net.Flush("test").ok());
  EXPECT_FALSE(net.pending());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 10, 20}));
  EXPECT_EQ(net.stats().messages, 4);
  EXPECT_EQ(net.stats().retransmits, 0);
  EXPECT_EQ(net.stats().duplicates, 0);
}

FaultSpec NetSpec(double drop, double dup, double reorder, double delay,
                  double partition) {
  FaultSpec spec;
  spec.enabled = true;
  spec.seed = 1;
  spec.net.drop_prob = drop;
  spec.net.dup_prob = dup;
  spec.net.reorder_prob = reorder;
  spec.net.delay_prob = delay;
  spec.net.partition_prob = partition;
  return spec;
}

TEST(SimNetworkTest, CertainDropStillDeliversUnderTheRetryBudget) {
  FaultSpec spec = NetSpec(1.0, 0, 0, 0, 0);
  FaultInjector injector(spec);
  RetryPolicy policy;
  policy.max_retries = 3;
  SimNetwork net(&injector, nullptr, policy);
  int commits = 0;
  net.Send(0, 1, 100, [&] { ++commits; });
  ASSERT_TRUE(net.Flush("test").ok());
  EXPECT_EQ(commits, 1);  // delivery is guaranteed, drops only retransmit
  EXPECT_EQ(net.stats().retransmits, 3);
  EXPECT_DOUBLE_EQ(net.stats().retrans_bytes, 300.0);
  EXPECT_GT(net.stats().delay_seconds, 0.0);
}

TEST(SimNetworkTest, DuplicatesAreDedupedAtDelivery) {
  FaultSpec spec = NetSpec(0, 1.0, 0, 0, 0);
  FaultInjector injector(spec);
  SimNetwork net(&injector, nullptr, RetryPolicy{});
  int commits = 0;
  net.Send(0, 1, 8, [&] { ++commits; });
  net.Send(1, 0, 8, [&] { ++commits; });
  ASSERT_TRUE(net.Flush("test").ok());
  // Every message was duplicated on the wire; each commit ran exactly once
  // — the non-idempotent CPMM accumulation sites depend on this.
  EXPECT_EQ(commits, 2);
  EXPECT_EQ(net.stats().duplicates, 2);
}

TEST(SimNetworkTest, StaleEpochSendsAreFencedAndSurfaceDataLoss) {
  ClusterMembership membership(3);
  SimNetwork net(nullptr, &membership, RetryPolicy{});
  int live_commits = 0;
  int zombie_commits = 0;
  net.Send(0, 2, 8, [&] { ++live_commits; });
  net.Send(1, 2, 8, [&] { ++zombie_commits; });
  // Worker 1 dies while its send is in flight: the epoch moves past it.
  membership.DeclareDead(1);
  Status st = net.Flush("cpmm-shuffle");
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
  EXPECT_NE(st.message().find("stale-epoch"), std::string::npos);
  EXPECT_EQ(live_commits, 1);    // live senders unaffected
  EXPECT_EQ(zombie_commits, 0);  // the zombie write never lands
  EXPECT_EQ(net.stats().stale_fenced, 1);
  EXPECT_EQ(net.stats().stale_applied, 0);
}

TEST(SimNetworkTest, ClearDropsQueuedSendsWithoutDelivering) {
  SimNetwork net(nullptr, nullptr, RetryPolicy{});
  int commits = 0;
  net.Send(0, 1, 8, [&] { ++commits; });
  ASSERT_TRUE(net.pending());
  net.Clear();
  EXPECT_FALSE(net.pending());
  ASSERT_TRUE(net.Flush("test").ok());
  EXPECT_EQ(commits, 0);
}

TEST(SimNetworkTest, TransientPartitionForceDropsBothDirectionsThenHeals) {
  FaultSpec spec = NetSpec(0, 0, 0, 0, 1.0);
  spec.net.partition_drops = 2;
  FaultInjector injector(spec);
  RetryPolicy policy;
  policy.max_retries = 4;
  SimNetwork net(&injector, nullptr, policy);
  int commits = 0;
  net.Send(0, 1, 8, [&] { ++commits; });  // opens the partition, victim 0
  net.Send(1, 0, 8, [&] { ++commits; });  // inbound to the victim: dropped
  net.Send(1, 2, 8, [&] { ++commits; });  // partition exhausted: may redraw
  ASSERT_TRUE(net.Flush("test").ok());
  EXPECT_EQ(commits, 3);
  EXPECT_GE(net.stats().partitions, 1);
  EXPECT_GE(net.stats().retransmits, 2);  // both forced drops retransmitted
}

// ---- end-to-end bit-identity sweep --------------------------------------

struct NetMode {
  const char* name;
  FaultSpec spec;
};

std::vector<NetMode> NetModes() {
  std::vector<NetMode> modes;
  modes.push_back({"drop-heavy", NetSpec(0.2, 0, 0, 0, 0)});
  modes.push_back({"dup-heavy", NetSpec(0, 0.2, 0, 0, 0)});
  modes.push_back({"reorder-heavy", NetSpec(0, 0, 0.2, 0, 0)});
  modes.push_back({"delay", NetSpec(0, 0, 0, 0.2, 0)});
  NetMode partition{"partition", NetSpec(0, 0, 0, 0, 0.02)};
  partition.spec.net.partition_drops = 4;
  modes.push_back(partition);
  modes.push_back({"net-mixed", NetSpec(0.1, 0.1, 0.1, 0.05, 0.01)});
  return modes;
}

RunConfig BaseConfig() {
  RunConfig config;
  config.num_workers = 3;
  config.threads_per_worker = 2;
  config.seed = 42;
  return config;
}

class NetFaultIdentityTest : public ::testing::TestWithParam<int> {
 protected:
  static FaultAppCase MakeCase(int index) {
    return index == 0 ? MakeSmallGnmf() : MakeSmallPageRank();
  }
};

TEST_P(NetFaultIdentityTest, NetworkFaultsNeverChangeResults) {
  const FaultAppCase app = MakeCase(GetParam());
  const Bindings bindings = app.MakeBindings();
  const auto baseline = RunProgram(app.program, bindings, BaseConfig());
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  int64_t total_messages = 0;
  int64_t total_perturbations = 0;
  for (const NetMode& mode : NetModes()) {
    for (uint64_t seed = 1; seed <= 10; ++seed) {
      RunConfig config = BaseConfig();
      config.fault = mode.spec;
      config.fault.seed = seed;
      const std::string context =
          app.name + "/" + mode.name + "/seed=" + std::to_string(seed);
      const auto outcome = RunProgram(app.program, bindings, config);
      ASSERT_TRUE(outcome.ok()) << context << ": " << outcome.status();
      ExpectBitIdentical(baseline->result, outcome->result, context);
      const ExecStats& stats = outcome->result.stats;
      total_messages += stats.net_messages;
      total_perturbations += stats.net_retransmits + stats.net_duplicates +
                             stats.net_reordered + stats.net_partitions;
      // The audit counter: a dead-sender transfer must never be applied
      // (nothing dies in this sweep, so even fencing stays silent).
      EXPECT_EQ(stats.net_stale_applied, 0) << context;
    }
  }
  // The sweep must exercise the network layer, not pass vacuously.
  EXPECT_GT(total_messages, 0) << app.name;
  EXPECT_GT(total_perturbations, 0) << app.name;
}

INSTANTIATE_TEST_SUITE_P(Apps, NetFaultIdentityTest, ::testing::Values(0, 1),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return info.param == 0 ? std::string("gnmf")
                                                  : std::string("pagerank");
                         });

}  // namespace
}  // namespace dmac
