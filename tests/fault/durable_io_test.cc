// StorageIO contract: the block serde round-trips bit-identically, every
// disk-fault knob maps to its documented status code, and soft crash
// points leave exactly the on-disk state a hard kill at the same point
// would (torn temp / synced temp / renamed file) while refusing all
// further I/O.
#include "fault/durable_io.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>

#include "common/status.h"
#include "fault/checksum.h"
#include "fault/fault_spec.h"
#include "matrix/block.h"

namespace dmac {
namespace {

namespace fs = std::filesystem;

/// Fresh directory under the system temp path, removed on destruction.
struct TempDir {
  explicit TempDir(const std::string& tag) {
    path = (fs::temp_directory_path() /
            ("dmac_durable_io_" + tag + "_" +
             std::to_string(::getpid())))
               .string();
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string File(const std::string& name) const { return path + "/" + name; }
  std::string path;
};

TEST(BlockSerdeTest, DenseRoundTripsBitIdentically) {
  const Block original = RandomDenseBlock(13, 7, 5);
  auto restored = DeserializeBlock(SerializeBlock(original), "test");
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(BlockChecksum(*restored), BlockChecksum(original));
}

TEST(BlockSerdeTest, SparseRoundTripsBitIdentically) {
  const Block original = RandomSparseBlock(24, 18, 0.15, 9);
  auto restored = DeserializeBlock(SerializeBlock(original), "test");
  ASSERT_TRUE(restored.ok()) << restored.status();
  ASSERT_TRUE(restored->IsSparse());
  EXPECT_EQ(BlockChecksum(*restored), BlockChecksum(original));
}

TEST(BlockSerdeTest, DamagedBuffersAreDataLossNeverCrashes) {
  const std::string good = SerializeBlock(RandomDenseBlock(8, 8, 3));
  // Empty, truncated at every prefix length, and one flipped byte: all must
  // surface kDataLoss with the caller's context, never a crash or a giant
  // allocation from a corrupt header.
  for (size_t len = 0; len < good.size(); ++len) {
    auto r = DeserializeBlock(good.substr(0, len), "fuzz");
    ASSERT_FALSE(r.ok()) << "prefix length " << len;
    EXPECT_EQ(r.status().code(), StatusCode::kDataLoss) << r.status();
  }
  for (size_t pos = 0; pos < good.size(); ++pos) {
    std::string bad = good;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x10);
    auto r = DeserializeBlock(bad, "fuzz");
    ASSERT_FALSE(r.ok()) << "flipped byte " << pos;
    EXPECT_EQ(r.status().code(), StatusCode::kDataLoss) << r.status();
  }
}

TEST(StorageIOTest, FaultFreeWriteReadListRemove) {
  TempDir dir("clean");
  StorageIO io;
  ASSERT_TRUE(io.CreateDir(dir.path).ok());
  ASSERT_TRUE(io.CreateDir(dir.path).ok());  // idempotent
  ASSERT_TRUE(io.WriteFileAtomic(dir.File("a"), "alpha").ok());
  ASSERT_TRUE(io.WriteFileAtomic(dir.File("b"), "beta").ok());
  auto data = io.ReadFile(dir.File("a"));
  ASSERT_TRUE(data.ok()) << data.status();
  EXPECT_EQ(*data, "alpha");
  auto names = io.List(dir.path);
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names->size(), 2u);
  EXPECT_EQ((*names)[0], "a");
  EXPECT_EQ((*names)[1], "b");
  io.Remove(dir.File("a"));
  EXPECT_EQ(io.ReadFile(dir.File("a")).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(io.faults_injected(), 0);
  EXPECT_FALSE(io.dead());
}

TEST(StorageIOTest, EnospcIsResourceExhaustedAndLeavesTargetUntouched) {
  TempDir dir("enospc");
  StorageIO clean;
  ASSERT_TRUE(clean.WriteFileAtomic(dir.File("f"), "original").ok());

  DiskFaultSpec spec;
  spec.enospc_prob = 1.0;
  StorageIO io(spec, /*seed=*/1);
  Status st = io.WriteFileAtomic(dir.File("f"), "replacement");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st;
  EXPECT_GT(io.faults_injected(), 0);
  // The target is untouched and no temp debris survives the rollback.
  EXPECT_EQ(*clean.ReadFile(dir.File("f")), "original");
  EXPECT_FALSE(fs::exists(dir.File("f") + ".tmp"));
}

TEST(StorageIOTest, ShortWriteIsUnavailableAndRolledBack) {
  TempDir dir("short");
  DiskFaultSpec spec;
  spec.short_write_prob = 1.0;
  StorageIO io(spec, /*seed=*/2);
  Status st = io.WriteFileAtomic(dir.File("f"), "0123456789");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st;
  EXPECT_FALSE(fs::exists(dir.File("f")));
  EXPECT_FALSE(fs::exists(dir.File("f") + ".tmp"));
}

TEST(StorageIOTest, FsyncFailureIsUnavailable) {
  TempDir dir("fsync");
  DiskFaultSpec spec;
  spec.fsync_fail_prob = 1.0;
  StorageIO io(spec, /*seed=*/3);
  Status st = io.WriteFileAtomic(dir.File("f"), "payload");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st;
  EXPECT_FALSE(fs::exists(dir.File("f")));
}

TEST(StorageIOTest, ReadFlipCorruptsExactlyOneBit) {
  TempDir dir("flip");
  StorageIO clean;
  const std::string payload(64, 'x');
  ASSERT_TRUE(clean.WriteFileAtomic(dir.File("f"), payload).ok());

  DiskFaultSpec spec;
  spec.read_flip_prob = 1.0;
  StorageIO io(spec, /*seed=*/4);
  auto data = io.ReadFile(dir.File("f"));
  ASSERT_TRUE(data.ok()) << data.status();
  ASSERT_EQ(data->size(), payload.size());
  int flipped_bits = 0;
  for (size_t i = 0; i < payload.size(); ++i) {
    unsigned delta = static_cast<unsigned char>((*data)[i]) ^
                     static_cast<unsigned char>(payload[i]);
    while (delta != 0) {
      flipped_bits += static_cast<int>(delta & 1u);
      delta >>= 1;
    }
  }
  EXPECT_EQ(flipped_bits, 1);
  EXPECT_GT(io.faults_injected(), 0);
}

/// Soft crash points must leave exactly the state a hard kill would:
/// point 1 = torn temp, point 2 = complete synced temp, point 3 = renamed
/// final file. In all three the instance is dead afterwards.
TEST(StorageIOTest, SoftCrashPointOneLeavesTornTemp) {
  TempDir dir("wp1");
  DiskFaultSpec spec;
  spec.crash_at = 1;
  StorageIO io(spec, /*seed=*/5, StorageIO::CrashMode::kSoft);
  const std::string payload = "0123456789abcdef";
  Status st = io.WriteFileAtomic(dir.File("f"), payload);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal) << st;
  EXPECT_TRUE(io.dead());
  EXPECT_FALSE(fs::exists(dir.File("f")));
  ASSERT_TRUE(fs::exists(dir.File("f") + ".tmp"));
  EXPECT_LT(fs::file_size(dir.File("f") + ".tmp"), payload.size());
}

TEST(StorageIOTest, SoftCrashPointTwoLeavesSyncedTemp) {
  TempDir dir("wp2");
  DiskFaultSpec spec;
  spec.crash_at = 2;
  StorageIO io(spec, /*seed=*/6, StorageIO::CrashMode::kSoft);
  const std::string payload = "0123456789abcdef";
  Status st = io.WriteFileAtomic(dir.File("f"), payload);
  EXPECT_EQ(st.code(), StatusCode::kInternal) << st;
  EXPECT_FALSE(fs::exists(dir.File("f")));
  ASSERT_TRUE(fs::exists(dir.File("f") + ".tmp"));
  EXPECT_EQ(fs::file_size(dir.File("f") + ".tmp"), payload.size());
}

TEST(StorageIOTest, SoftCrashPointThreeLeavesRenamedFile) {
  TempDir dir("wp3");
  DiskFaultSpec spec;
  spec.crash_at = 3;
  StorageIO io(spec, /*seed=*/7, StorageIO::CrashMode::kSoft);
  Status st = io.WriteFileAtomic(dir.File("f"), "payload");
  EXPECT_EQ(st.code(), StatusCode::kInternal) << st;
  // The rename happened before the crash: the write is durable even though
  // the writer died.
  StorageIO clean;
  auto data = clean.ReadFile(dir.File("f"));
  ASSERT_TRUE(data.ok()) << data.status();
  EXPECT_EQ(*data, "payload");
  EXPECT_FALSE(fs::exists(dir.File("f") + ".tmp"));
}

TEST(StorageIOTest, CrashPointCountsAcrossWrites) {
  TempDir dir("span");
  DiskFaultSpec spec;
  spec.crash_at = 4;  // 3 points per write: fires at write 2, point 1
  StorageIO io(spec, /*seed=*/8, StorageIO::CrashMode::kSoft);
  ASSERT_TRUE(io.WriteFileAtomic(dir.File("a"), "first").ok());
  EXPECT_EQ(io.write_points(), 3);
  Status st = io.WriteFileAtomic(dir.File("b"), "second");
  EXPECT_EQ(st.code(), StatusCode::kInternal) << st;
  EXPECT_TRUE(fs::exists(dir.File("a")));
  EXPECT_FALSE(fs::exists(dir.File("b")));
}

TEST(StorageIOTest, DeadInstanceRefusesEverythingAndCleansNothing) {
  TempDir dir("dead");
  DiskFaultSpec spec;
  spec.crash_at = 1;
  StorageIO io(spec, /*seed=*/9, StorageIO::CrashMode::kSoft);
  ASSERT_EQ(io.WriteFileAtomic(dir.File("f"), "x").code(),
            StatusCode::kInternal);
  ASSERT_TRUE(io.dead());
  // A dead process cannot write, read, or clean up.
  EXPECT_EQ(io.WriteFileAtomic(dir.File("g"), "y").code(),
            StatusCode::kInternal);
  EXPECT_EQ(io.ReadFile(dir.File("f")).status().code(),
            StatusCode::kInternal);
  io.Remove(dir.File("f") + ".tmp");
  EXPECT_TRUE(fs::exists(dir.File("f") + ".tmp"));
}

}  // namespace
}  // namespace dmac
