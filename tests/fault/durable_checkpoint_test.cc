// DurableCheckpointStore contract: the manifest rename is the commit
// point. Commits either land whole or roll back whole; Open() recovers the
// newest fully-verifiable epoch, treats footer-invalid manifests as
// corruption (fall back or fail kDataLoss — never a partial restore), and
// garbage-collects every file it does not keep.
#include "fault/durable_checkpoint.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "fault/checksum.h"
#include "fault/fault_spec.h"
#include "matrix/block.h"

namespace dmac {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  explicit TempDir(const std::string& tag) {
    path = (fs::temp_directory_path() /
            ("dmac_durable_ckpt_" + tag + "_" + std::to_string(::getpid())))
               .string();
    fs::remove_all(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

std::unique_ptr<DurableCheckpointStore> MustOpen(
    const std::string& dir,
    std::shared_ptr<StorageIO> io = std::make_shared<StorageIO>()) {
  auto store = DurableCheckpointStore::Open(dir, std::move(io));
  EXPECT_TRUE(store.ok()) << store.status();
  return std::move(*store);
}

PendingDurableBlock Pending(int node, int worker, int64_t key,
                            std::shared_ptr<const Block> block) {
  PendingDurableBlock pb;
  pb.node_id = node;
  pb.worker = worker;
  pb.key = key;
  pb.checksum = BlockChecksum(*block);
  pb.block = std::move(block);
  return pb;
}

std::set<std::string> FileNames(const std::string& dir) {
  std::set<std::string> names;
  std::error_code ec;
  for (auto it = fs::directory_iterator(dir, ec);
       !ec && it != fs::directory_iterator(); ++it) {
    names.insert(it->path().filename().string());
  }
  return names;
}

/// One committed epoch with two distinct blocks (one shared by two
/// cluster positions) and a scalar.
void CommitSample(DurableCheckpointStore* store, int resume_step,
                  double scalar_value) {
  auto b1 = std::make_shared<const Block>(RandomDenseBlock(8, 8, resume_step));
  auto b2 = std::make_shared<const Block>(
      RandomSparseBlock(16, 16, 0.3, resume_step + 100));
  Status st = store->Commit(
      resume_step, /*checkpoint_counter=*/resume_step + 1,
      {{"err", scalar_value}}, /*reload_nodes=*/{7},
      {Pending(1, 0, 0, b1), Pending(1, 1, 3, b1), Pending(2, 2, 5, b2)});
  ASSERT_TRUE(st.ok()) << st;
}

TEST(DurableCheckpointTest, CommitAndReopenRoundTrips) {
  TempDir dir("roundtrip");
  auto store = MustOpen(dir.path);
  EXPECT_EQ(store->committed(), nullptr);
  CommitSample(store.get(), /*resume_step=*/4, 0.5);
  EXPECT_EQ(store->epochs_committed(), 1);
  EXPECT_GT(store->bytes_written(), 0);

  auto reopened = MustOpen(dir.path);
  const DurableSnapshot* snap = reopened->committed();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->resume_step, 4);
  EXPECT_EQ(snap->checkpoint_counter, 5);
  ASSERT_EQ(snap->scalars.size(), 1u);
  EXPECT_EQ(snap->scalars[0].first, "err");
  double restored;
  static_assert(sizeof(restored) == sizeof(snap->scalars[0].second));
  std::memcpy(&restored, &snap->scalars[0].second, sizeof(restored));
  EXPECT_EQ(restored, 0.5);
  ASSERT_EQ(snap->reload_nodes, std::vector<int>{7});
  ASSERT_EQ(snap->blocks.size(), 3u);
  // The shared payload was deduplicated into one file.
  EXPECT_EQ(snap->blocks[0].file, snap->blocks[1].file);
  EXPECT_NE(snap->blocks[0].file, snap->blocks[2].file);
  for (const DurableBlock& ref : snap->blocks) {
    auto block = reopened->ReadBlock(ref);
    ASSERT_TRUE(block.ok()) << block.status();
    EXPECT_EQ(BlockChecksum(*block), ref.checksum);
  }
}

TEST(DurableCheckpointTest, NewEpochGarbageCollectsThePrevious) {
  TempDir dir("gc");
  auto store = MustOpen(dir.path);
  CommitSample(store.get(), 4, 0.5);
  const std::set<std::string> first = FileNames(dir.path);
  CommitSample(store.get(), 9, 0.25);
  const std::set<std::string> second = FileNames(dir.path);
  // No file of the first epoch survives; exactly one manifest remains.
  for (const std::string& name : first) {
    EXPECT_EQ(second.count(name), 0u) << name << " survived GC";
  }
  int manifests = 0;
  for (const std::string& name : second) {
    if (name.rfind("manifest-", 0) == 0) ++manifests;
  }
  EXPECT_EQ(manifests, 1);
  auto reopened = MustOpen(dir.path);
  ASSERT_NE(reopened->committed(), nullptr);
  EXPECT_EQ(reopened->committed()->resume_step, 9);
}

TEST(DurableCheckpointTest, FailedCommitRollsBackAndKeepsPreviousEpoch) {
  TempDir dir("rollback");
  // First epoch lands fault-free.
  {
    auto store = MustOpen(dir.path);
    CommitSample(store.get(), 4, 0.5);
  }
  const std::set<std::string> before = FileNames(dir.path);
  // Every write fails with ENOSPC: the commit must roll back whole.
  DiskFaultSpec spec;
  spec.enospc_prob = 1.0;
  auto io = std::make_shared<StorageIO>(spec, /*seed=*/1);
  auto store = MustOpen(dir.path, io);
  auto block = std::make_shared<const Block>(RandomDenseBlock(8, 8, 77));
  Status st = store->Commit(9, 10, {}, {}, {Pending(1, 0, 0, block)});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st;
  EXPECT_EQ(store->epochs_committed(), 0);
  // Disk state is exactly what it was before the attempt.
  EXPECT_EQ(FileNames(dir.path), before);
  ASSERT_NE(store->committed(), nullptr);
  EXPECT_EQ(store->committed()->resume_step, 4);
}

TEST(DurableCheckpointTest, SoftCrashDebrisIsRolledBackOnReopen) {
  TempDir dir("debris");
  {
    auto store = MustOpen(dir.path);
    CommitSample(store.get(), 4, 0.5);
  }
  const std::set<std::string> committed = FileNames(dir.path);
  // Crash at every write point of the next commit in turn; whatever
  // debris each leaves, reopening must recover epoch 1 and GC the rest.
  for (int crash_at = 1; crash_at <= 12; ++crash_at) {
    DiskFaultSpec spec;
    spec.crash_at = crash_at;
    auto io = std::make_shared<StorageIO>(spec, /*seed=*/1,
                                          StorageIO::CrashMode::kSoft);
    auto store = MustOpen(dir.path, io);
    auto block =
        std::make_shared<const Block>(RandomDenseBlock(8, 8, crash_at));
    Status st = store->Commit(9, 10, {{"err", 0.1}}, {},
                              {Pending(1, 0, 0, block)});
    if (st.ok()) continue;  // crash point past this commit's writes
    EXPECT_EQ(st.code(), StatusCode::kInternal) << st;

    auto reopened = MustOpen(dir.path);
    ASSERT_NE(reopened->committed(), nullptr) << "crash_at " << crash_at;
    // Either the old epoch survived (crash before the manifest rename) or
    // the new one committed (crash after it) — never anything partial.
    const int resume = reopened->committed()->resume_step;
    EXPECT_TRUE(resume == 4 || resume == 9)
        << "crash_at " << crash_at << " resume_step " << resume;
    if (resume == 4) {
      EXPECT_EQ(FileNames(dir.path), committed) << "crash_at " << crash_at;
    }
    for (const DurableBlock& ref : reopened->committed()->blocks) {
      EXPECT_TRUE(reopened->ReadBlock(ref).ok()) << "crash_at " << crash_at;
    }
    if (resume == 9) {
      // Put epoch 1 back for the next loop iteration.
      fs::remove_all(dir.path);
      auto fresh = MustOpen(dir.path);
      CommitSample(fresh.get(), 4, 0.5);
    }
  }
}

/// Satellite: fuzzed torn manifests. Truncating the committed manifest at
/// every byte length (and flipping every byte) must either fall back to
/// the previous verified epoch or fail with a clean kDataLoss — never a
/// partial restore — and Open must GC the damaged files it rejects.
TEST(DurableCheckpointTest, FuzzedManifestRollsBackOrFailsClean) {
  TempDir dir("fuzz");
  {
    auto store = MustOpen(dir.path);
    CommitSample(store.get(), 4, 0.5);
    CommitSample(store.get(), 9, 0.25);
  }
  // Locate the (single) committed manifest.
  std::string manifest_name;
  for (const std::string& name : FileNames(dir.path)) {
    if (name.rfind("manifest-", 0) == 0) manifest_name = name;
  }
  ASSERT_FALSE(manifest_name.empty());
  const std::string manifest_path = dir.path + "/" + manifest_name;
  std::string good;
  {
    std::ifstream in(manifest_path, std::ios::binary);
    ASSERT_TRUE(in.is_open());
    good.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  const std::set<std::string> intact = FileNames(dir.path);

  auto restore_dir = [&]() {
    for (const std::string& name : FileNames(dir.path)) {
      if (intact.count(name) == 0) fs::remove(dir.path + "/" + name);
    }
    std::ofstream out(manifest_path, std::ios::binary | std::ios::trunc);
    out.write(good.data(), static_cast<std::streamsize>(good.size()));
  };
  auto check = [&](const std::string& damaged, const std::string& what) {
    {
      std::ofstream out(manifest_path, std::ios::binary | std::ios::trunc);
      out.write(damaged.data(), static_cast<std::streamsize>(damaged.size()));
    }
    auto store = DurableCheckpointStore::Open(dir.path,
                                              std::make_shared<StorageIO>());
    if (store.ok()) {
      // Fallback (or the damage kept the manifest valid): whatever epoch
      // was chosen must verify completely.
      const DurableSnapshot* snap = (*store)->committed();
      if (snap != nullptr) {
        EXPECT_TRUE(snap->resume_step == 4 || snap->resume_step == 9)
            << what;
        for (const DurableBlock& ref : snap->blocks) {
          EXPECT_TRUE((*store)->ReadBlock(ref).ok()) << what;
        }
      }
    } else {
      EXPECT_EQ(store.status().code(), StatusCode::kDataLoss)
          << what << ": " << store.status();
    }
    restore_dir();
  };

  for (size_t len = 0; len < good.size(); ++len) {
    check(good.substr(0, len), "truncated at " + std::to_string(len));
  }
  for (size_t pos = 0; pos < good.size(); ++pos) {
    std::string bad = good;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x08);
    check(bad, "flipped byte " + std::to_string(pos));
  }
}

TEST(DurableCheckpointTest, CorruptBlockFileFallsBackToPreviousEpoch) {
  TempDir dir("blockcorrupt");
  {
    auto store = MustOpen(dir.path);
    CommitSample(store.get(), 4, 0.5);
  }
  // Hand-plant a *newer* bogus epoch: a valid-looking manifest referencing
  // a block file whose bytes do not match. Open must reject epoch 99 as
  // corrupt... but since only epoch 99's manifest exists alongside epoch
  // 1's, verification of 99 fails and 1 is recovered.
  // Simplest corruption: flip a payload byte of a committed block file.
  std::string block_name;
  for (const std::string& name : FileNames(dir.path)) {
    if (name.rfind("blk-", 0) == 0) block_name = name;
  }
  ASSERT_FALSE(block_name.empty());
  {
    std::fstream f(dir.path + "/" + block_name,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(40);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x20);
    f.seekp(40);
    f.write(&byte, 1);
  }
  // The only epoch is now corrupt: clean kDataLoss, no partial restore.
  auto store =
      DurableCheckpointStore::Open(dir.path, std::make_shared<StorageIO>());
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kDataLoss) << store.status();
}

TEST(DurableCheckpointTest, FreshDirectoryIsAFreshStart) {
  TempDir dir("fresh");
  auto store = MustOpen(dir.path);
  EXPECT_EQ(store->committed(), nullptr);
  EXPECT_EQ(store->epochs_committed(), 0);
}

}  // namespace
}  // namespace dmac
