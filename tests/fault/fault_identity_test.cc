// The acceptance sweep of docs/fault_tolerance.md: across many injector
// seeds and every fault mode, a recovered run's outputs are *bit-identical*
// to the fault-free run's — recovery rebuilds exactly the bytes that were
// lost, never an approximation.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/runner.h"
#include "fault_test_util.h"

namespace dmac {
namespace {

struct FaultMode {
  const char* name;
  FaultSpec spec;  // enabled + seed filled per run
};

std::vector<FaultMode> AllModes() {
  std::vector<FaultMode> modes;
  FaultMode crash{"crash", {}};
  crash.spec.crash_prob = 0.05;
  modes.push_back(crash);

  FaultMode lost{"lost-block", {}};
  lost.spec.lost_block_prob = 0.01;
  modes.push_back(lost);

  FaultMode corrupt{"corruption", {}};
  corrupt.spec.corrupt_prob = 0.01;
  modes.push_back(corrupt);

  FaultMode straggler{"straggler", {}};
  straggler.spec.straggler_prob = 0.2;
  straggler.spec.straggler_delay_seconds = 0.01;
  modes.push_back(straggler);

  FaultMode mixed{"mixed", {}};
  mixed.spec.crash_prob = 0.03;
  mixed.spec.lost_block_prob = 0.005;
  mixed.spec.corrupt_prob = 0.005;
  mixed.spec.transient_prob = 0.05;
  mixed.spec.straggler_prob = 0.1;
  mixed.spec.straggler_delay_seconds = 0.01;
  modes.push_back(mixed);
  return modes;
}

RunConfig BaseConfig() {
  RunConfig config;
  config.num_workers = 3;
  config.threads_per_worker = 2;
  config.seed = 42;
  return config;
}

class FaultIdentityTest : public ::testing::TestWithParam<int> {
 protected:
  static FaultAppCase MakeCase(int index) {
    return index == 0 ? MakeSmallGnmf() : MakeSmallPageRank();
  }
};

TEST_P(FaultIdentityTest, RecoveredRunsAreBitIdenticalAcrossSeeds) {
  const FaultAppCase app = MakeCase(GetParam());
  const Bindings bindings = app.MakeBindings();
  const auto baseline = RunProgram(app.program, bindings, BaseConfig());
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  int64_t total_faults = 0;
  for (const FaultMode& mode : AllModes()) {
    for (uint64_t seed = 1; seed <= 10; ++seed) {
      RunConfig config = BaseConfig();
      config.fault = mode.spec;
      config.fault.enabled = true;
      config.fault.seed = seed;
      const std::string context =
          app.name + "/" + mode.name + "/seed=" + std::to_string(seed);
      const auto outcome = RunProgram(app.program, bindings, config);
      ASSERT_TRUE(outcome.ok()) << context << ": " << outcome.status();
      ExpectBitIdentical(baseline->result, outcome->result, context);
      total_faults += outcome->result.stats.faults_injected;
    }
  }
  // The sweep must actually exercise recovery, not pass vacuously.
  EXPECT_GT(total_faults, 0) << app.name;
}

TEST_P(FaultIdentityTest, CheckpointedRecoveryIsAlsoBitIdentical) {
  const FaultAppCase app = MakeCase(GetParam());
  const Bindings bindings = app.MakeBindings();
  const auto baseline = RunProgram(app.program, bindings, BaseConfig());
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  for (uint64_t seed = 1; seed <= 5; ++seed) {
    RunConfig config = BaseConfig();
    config.checkpoint_every = 2;
    config.fault.enabled = true;
    config.fault.seed = seed;
    config.fault.crash_prob = 0.05;
    config.fault.lost_block_prob = 0.01;
    const std::string context =
        app.name + "/checkpointed/seed=" + std::to_string(seed);
    const auto outcome = RunProgram(app.program, bindings, config);
    ASSERT_TRUE(outcome.ok()) << context << ": " << outcome.status();
    ExpectBitIdentical(baseline->result, outcome->result, context);
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, FaultIdentityTest, ::testing::Values(0, 1),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return info.param == 0 ? std::string("gnmf")
                                                  : std::string("pagerank");
                         });

}  // namespace
}  // namespace dmac
