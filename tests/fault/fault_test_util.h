// Shared fixtures for the fault suite: small paper workloads and the
// bit-identity oracle that recovered runs are checked against.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "apps/gnmf.h"
#include "apps/pagerank.h"
#include "apps/runner.h"
#include "data/graph_gen.h"
#include "data/synthetic.h"
#include "fault/checksum.h"

namespace dmac {

constexpr int64_t kFaultBs = 16;

/// A workload with owned input data, small enough that a whole seed×mode
/// identity sweep stays cheap.
struct FaultAppCase {
  std::string name;
  Program program;
  std::vector<std::pair<std::string, LocalMatrix>> inputs;

  Bindings MakeBindings() const {
    Bindings b;
    for (const auto& [name_, m] : inputs) b.emplace(name_, &m);
    return b;
  }
};

inline FaultAppCase MakeSmallGnmf() {
  GnmfConfig config{48, 32, 0.25, 4, 3};
  FaultAppCase c{"gnmf", BuildGnmfProgram(config), {}};
  c.inputs.emplace_back("V", SyntheticSparse(48, 32, 0.25, kFaultBs, 31));
  return c;
}

inline FaultAppCase MakeSmallPageRank() {
  const GraphSpec spec = SocPokec().Scaled(30000);
  PageRankConfig config{spec.nodes, 0.02, 3, 0.85};
  FaultAppCase c{"pagerank", BuildPageRankProgram(config), {}};
  c.inputs.emplace_back("link", RowNormalizedLink(spec, kFaultBs, 3));
  c.inputs.emplace_back(
      "D", ConstantMatrix({1, spec.nodes}, kFaultBs,
                          1.0f / static_cast<Scalar>(spec.nodes)));
  return c;
}

/// Recovery correctness is *bit* identity, not approximate equality: every
/// output block must hash to the fault-free run's checksum and every scalar
/// must compare exactly equal.
inline void ExpectBitIdentical(const ExecutionResult& expected,
                               const ExecutionResult& actual,
                               const std::string& context) {
  ASSERT_EQ(expected.matrices.size(), actual.matrices.size()) << context;
  for (const auto& [name, want] : expected.matrices) {
    ASSERT_TRUE(actual.matrices.count(name)) << context << " " << name;
    const LocalMatrix& got = actual.matrices.at(name);
    ASSERT_EQ(want.rows(), got.rows()) << context << " " << name;
    ASSERT_EQ(want.cols(), got.cols()) << context << " " << name;
    ASSERT_EQ(want.block_size(), got.block_size()) << context << " " << name;
    for (int64_t bi = 0; bi < want.grid().block_rows(); ++bi) {
      for (int64_t bj = 0; bj < want.grid().block_cols(); ++bj) {
        EXPECT_EQ(BlockChecksum(want.BlockAt(bi, bj)),
                  BlockChecksum(got.BlockAt(bi, bj)))
            << context << " " << name << " block (" << bi << "," << bj
            << ") diverged";
      }
    }
  }
  ASSERT_EQ(expected.scalars.size(), actual.scalars.size()) << context;
  for (const auto& [name, want] : expected.scalars) {
    ASSERT_TRUE(actual.scalars.count(name)) << context << " " << name;
    EXPECT_EQ(want, actual.scalars.at(name)) << context << " " << name;
  }
}

}  // namespace dmac
