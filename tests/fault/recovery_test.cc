// Executor-level recovery semantics: retry exhaustion surfaces a clean
// error, transient faults resolve within the retry budget, checkpointing
// is transparent, and the disabled fault path touches nothing.
#include <gtest/gtest.h>

#include <string>

#include "apps/runner.h"
#include "fault_test_util.h"

namespace dmac {
namespace {

RunConfig BaseConfig() {
  RunConfig config;
  config.num_workers = 3;
  config.threads_per_worker = 2;
  config.seed = 42;
  return config;
}

/// The id of some kCompute step of `program`'s plan — a step whose worker
/// task launches pass through the injector.
int AnyComputeStepId(const Program& program, const RunConfig& config) {
  auto plan = PlanProgram(program, config);
  EXPECT_TRUE(plan.ok()) << plan.status();
  for (const PlanStep& step : plan->steps) {
    if (step.kind == StepKind::kCompute) return step.id;
  }
  ADD_FAILURE() << "plan has no compute step";
  return -1;
}

TEST(RecoveryTest, RetryExhaustionIsACleanError) {
  const FaultAppCase app = MakeSmallGnmf();
  RunConfig config = BaseConfig();
  config.fault.enabled = true;
  config.fault.max_retries = 2;
  config.fault.permanent_fail_step =
      AnyComputeStepId(app.program, config);

  const auto outcome = RunProgram(app.program, app.MakeBindings(), config);
  // A permanent fault must surface as a Status, not a crash or a partial
  // result (RunProgram returns no result at all on error).
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kUnavailable)
      << outcome.status();
  EXPECT_NE(outcome.status().ToString().find("attempts"), std::string::npos)
      << outcome.status();
}

TEST(RecoveryTest, ZeroRetriesGivesUpOnTheFirstFailure) {
  const FaultAppCase app = MakeSmallGnmf();
  RunConfig config = BaseConfig();
  config.fault.enabled = true;
  config.fault.max_retries = 0;
  config.fault.permanent_fail_step =
      AnyComputeStepId(app.program, config);
  const auto outcome = RunProgram(app.program, app.MakeBindings(), config);
  ASSERT_FALSE(outcome.ok());
  EXPECT_NE(outcome.status().ToString().find("1 attempts"),
            std::string::npos)
      << outcome.status();
}

TEST(RecoveryTest, TransientFaultsResolveWithinTheRetryBudget) {
  const FaultAppCase app = MakeSmallGnmf();
  const auto baseline =
      RunProgram(app.program, app.MakeBindings(), BaseConfig());
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  RunConfig config = BaseConfig();
  config.fault.enabled = true;
  config.fault.seed = 5;
  config.fault.transient_prob = 0.5;
  const auto outcome = RunProgram(app.program, app.MakeBindings(), config);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  // The injector's per-step budget guarantees convergence; at this rate the
  // fixed schedule certainly fired.
  EXPECT_GT(outcome->result.stats.faults_injected, 0);
  EXPECT_GT(outcome->result.stats.retries, 0);
  EXPECT_GT(outcome->result.stats.TotalRecoverySeconds(), 0);
  ExpectBitIdentical(baseline->result, outcome->result, "transient");
  // Recovery work must not inflate the useful-compute account.
  EXPECT_NEAR(outcome->result.stats.TotalComputeSeconds(),
              baseline->result.stats.TotalComputeSeconds(),
              0.5 * baseline->result.stats.TotalComputeSeconds() + 0.05);
}

TEST(RecoveryTest, StragglersAreSpeculatedAndHarmless) {
  const FaultAppCase app = MakeSmallPageRank();
  const auto baseline =
      RunProgram(app.program, app.MakeBindings(), BaseConfig());
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  RunConfig config = BaseConfig();
  config.fault.enabled = true;
  config.fault.seed = 9;
  config.fault.straggler_prob = 0.5;
  config.fault.straggler_delay_seconds = 0.02;
  const auto outcome = RunProgram(app.program, app.MakeBindings(), config);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_GT(outcome->result.stats.faults_injected, 0);
  ExpectBitIdentical(baseline->result, outcome->result, "straggler");
}

TEST(RecoveryTest, CheckpointingIsTransparent) {
  const FaultAppCase app = MakeSmallGnmf();
  const auto baseline =
      RunProgram(app.program, app.MakeBindings(), BaseConfig());
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  RunConfig config = BaseConfig();
  config.checkpoint_every = 1;
  const auto outcome = RunProgram(app.program, app.MakeBindings(), config);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  // GNMF hints W and H; every producing step triggers the counter.
  EXPECT_GT(outcome->result.stats.checkpoint_bytes, 0);
  ExpectBitIdentical(baseline->result, outcome->result, "checkpoint");
}

TEST(RecoveryTest, DisabledFaultPathLeavesCountersZero) {
  const FaultAppCase app = MakeSmallPageRank();
  const auto outcome =
      RunProgram(app.program, app.MakeBindings(), BaseConfig());
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  const ExecStats& stats = outcome->result.stats;
  EXPECT_EQ(stats.faults_injected, 0);
  EXPECT_EQ(stats.retries, 0);
  EXPECT_EQ(stats.recomputed_blocks, 0);
  EXPECT_EQ(stats.restored_blocks, 0);
  EXPECT_EQ(stats.speculated_tasks, 0);
  EXPECT_EQ(stats.checkpoint_bytes, 0);
  EXPECT_DOUBLE_EQ(stats.recovery_bytes, 0);
  EXPECT_DOUBLE_EQ(stats.TotalRecoverySeconds(), 0);
}

TEST(RecoveryTest, EnabledButQuietSpecChangesNothing) {
  // enabled with all probabilities zero: the fault path runs (checksums,
  // lineage) but injects nothing — results and counters as a plain run.
  const FaultAppCase app = MakeSmallGnmf();
  const auto baseline =
      RunProgram(app.program, app.MakeBindings(), BaseConfig());
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  RunConfig config = BaseConfig();
  config.fault.enabled = true;
  const auto outcome = RunProgram(app.program, app.MakeBindings(), config);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->result.stats.faults_injected, 0);
  EXPECT_EQ(outcome->result.stats.retries, 0);
  ExpectBitIdentical(baseline->result, outcome->result, "quiet");
}

TEST(RecoveryTest, InvalidSpecIsRejectedBeforeExecution) {
  const FaultAppCase app = MakeSmallGnmf();
  RunConfig config = BaseConfig();
  config.fault.enabled = true;
  config.fault.crash_prob = 2.0;
  const auto outcome = RunProgram(app.program, app.MakeBindings(), config);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dmac
