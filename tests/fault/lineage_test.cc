// LineageTracker manifests and the driver-side CheckpointStore.
#include "fault/lineage.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fault/checkpoint.h"
#include "fault/checksum.h"
#include "matrix/block.h"

namespace dmac {
namespace {

NodeLineage MakeLineage(int node_id) {
  NodeLineage lin;
  lin.node_id = node_id;
  lin.producer_step = 3;
  lin.inputs = {0, 1};
  lin.blocks = {{1, 7, 0xbeef}, {0, 2, 0xcafe}, {0, 5, 0xfeed}};
  return lin;
}

TEST(LineageTrackerTest, RecordFindForgetRoundTrip) {
  LineageTracker tracker;
  EXPECT_EQ(tracker.Find(4), nullptr);
  tracker.Record(MakeLineage(4));
  const NodeLineage* found = tracker.Find(4);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->producer_step, 3);
  EXPECT_EQ(found->inputs, (std::vector<int>{0, 1}));
  EXPECT_EQ(tracker.size(), 1u);
  tracker.Forget(4);
  EXPECT_EQ(tracker.Find(4), nullptr);
  EXPECT_EQ(tracker.size(), 0u);
}

TEST(LineageTrackerTest, BlocksAreSortedForDeterministicComparison) {
  LineageTracker tracker;
  tracker.Record(MakeLineage(9));
  const NodeLineage* found = tracker.Find(9);
  ASSERT_NE(found, nullptr);
  ASSERT_EQ(found->blocks.size(), 3u);
  EXPECT_EQ(found->blocks[0].worker, 0);
  EXPECT_EQ(found->blocks[0].key, 2);
  EXPECT_EQ(found->blocks[1].worker, 0);
  EXPECT_EQ(found->blocks[1].key, 5);
  EXPECT_EQ(found->blocks[2].worker, 1);
  EXPECT_EQ(found->blocks[2].key, 7);
}

TEST(LineageTrackerTest, ReRecordingReplacesTheManifest) {
  LineageTracker tracker;
  tracker.Record(MakeLineage(4));
  NodeLineage updated = MakeLineage(4);
  updated.producer_step = 8;
  updated.blocks.clear();
  tracker.Record(std::move(updated));
  const NodeLineage* found = tracker.Find(4);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->producer_step, 8);
  EXPECT_TRUE(found->blocks.empty());
  EXPECT_EQ(tracker.size(), 1u);
}

// ---- checkpoint store ---------------------------------------------------

std::vector<CheckpointBlock> Snapshot(uint64_t seed) {
  std::vector<CheckpointBlock> blocks;
  auto block = std::make_shared<const Block>(RandomDenseBlock(4, 4, seed));
  blocks.push_back({0, 0, BlockChecksum(*block), block});
  return blocks;
}

TEST(CheckpointStoreTest, PutFindForgetRoundTrip) {
  CheckpointStore store;
  EXPECT_EQ(store.Find(2), nullptr);
  store.Put(2, Snapshot(1));
  const auto* snap = store.Find(2);
  ASSERT_NE(snap, nullptr);
  ASSERT_EQ(snap->size(), 1u);
  EXPECT_EQ((*snap)[0].checksum, BlockChecksum(*(*snap)[0].block));
  EXPECT_EQ(store.size(), 1u);
  store.Forget(2);
  EXPECT_EQ(store.Find(2), nullptr);
  EXPECT_EQ(store.total_bytes(), 0);
}

TEST(CheckpointStoreTest, ReplacementKeepsTotalButGrowsWritten) {
  CheckpointStore store;
  store.Put(2, Snapshot(1));
  const int64_t bytes = store.total_bytes();
  ASSERT_GT(bytes, 0);
  EXPECT_EQ(store.bytes_written(), bytes);
  // A later iteration re-checkpoints the same node: the live footprint is
  // one snapshot, the lifetime-written metric keeps accumulating.
  store.Put(2, Snapshot(2));
  EXPECT_EQ(store.total_bytes(), bytes);
  EXPECT_EQ(store.bytes_written(), 2 * bytes);
  EXPECT_EQ(store.size(), 1u);
}

}  // namespace
}  // namespace dmac
