// Permanent worker loss and degraded-mode execution
// (docs/fault_tolerance.md).
//
// The acceptance properties: losing a worker mid-query completes
// bit-identical to the fault-free run with zero stale-epoch writes applied
// (the audit counter), an in-flight death during a CPMM shuffle is fenced
// by the membership epoch, and dropping below the --min-workers quorum
// fails clean with kUnavailable instead of burning retries.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/runner.h"
#include "fault_test_util.h"
#include "plan/plan.h"

namespace dmac {
namespace {

RunConfig BaseConfig(int workers) {
  RunConfig config;
  config.num_workers = workers;
  config.threads_per_worker = 2;
  config.seed = 42;
  return config;
}

/// Step ids of the plan this config would run, keyed by kind.
std::vector<int> StepIdsOfKind(const FaultAppCase& app,
                               const RunConfig& config, StepKind kind,
                               MultAlgo algo = MultAlgo::kNone) {
  auto plan = PlanProgram(app.program, config);
  EXPECT_TRUE(plan.ok()) << plan.status();
  std::vector<int> ids;
  if (!plan.ok()) return ids;
  for (const PlanStep& step : plan->steps) {
    if (step.kind != kind) continue;
    if (algo != MultAlgo::kNone && step.mult_algo != algo) continue;
    ids.push_back(step.id);
  }
  return ids;
}

TEST(DegradedRunTest, GnmfLosingOneOfFourWorkersIsBitIdentical) {
  const FaultAppCase app = MakeSmallGnmf();
  const Bindings bindings = app.MakeBindings();
  const RunConfig clean = BaseConfig(4);
  const auto baseline = RunProgram(app.program, bindings, clean);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  // Kill worker 1 at a boundary in the middle of the query.
  const auto computes =
      StepIdsOfKind(app, clean, StepKind::kCompute);
  ASSERT_FALSE(computes.empty());
  RunConfig config = clean;
  config.fault.enabled = true;
  config.fault.death_step = computes[computes.size() / 2];
  config.fault.death_worker = 1;
  const auto outcome = RunProgram(app.program, bindings, config);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ExpectBitIdentical(baseline->result, outcome->result, "gnmf/death");

  const ExecStats& stats = outcome->result.stats;
  EXPECT_EQ(stats.workers_dead, 1);
  EXPECT_GT(stats.membership_epoch, 1);
  EXPECT_GT(stats.detection_seconds, 0.0);
  EXPECT_EQ(stats.net_stale_applied, 0);  // the audit counter
}

TEST(DegradedRunTest, InFlightDeathDuringCpmmShuffleIsEpochFenced) {
  const FaultAppCase app = MakeSmallGnmf();
  const Bindings bindings = app.MakeBindings();
  const RunConfig clean = BaseConfig(4);
  const auto baseline = RunProgram(app.program, bindings, clean);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  const auto cpmm_steps =
      StepIdsOfKind(app, clean, StepKind::kCompute, MultAlgo::kCPMM);
  if (cpmm_steps.empty()) {
    GTEST_SKIP() << "plan has no CPMM step to kill mid-shuffle";
  }
  RunConfig config = clean;
  config.fault.enabled = true;
  config.fault.death_step = cpmm_steps.front();
  // Worker 1 always has partials in flight to other owners at this step;
  // worker 0's partials happen to stay local (nothing to fence).
  config.fault.death_worker = 1;
  config.fault.death_in_flight = true;
  const auto outcome = RunProgram(app.program, bindings, config);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ExpectBitIdentical(baseline->result, outcome->result, "gnmf/in-flight");

  const ExecStats& stats = outcome->result.stats;
  EXPECT_EQ(stats.workers_dead, 1);
  // The victim's partials were in flight when the epoch moved: they must
  // have been fenced, never applied.
  EXPECT_GT(stats.net_stale_fenced, 0);
  EXPECT_EQ(stats.net_stale_applied, 0);
}

TEST(DegradedRunTest, BelowQuorumFailsCleanWithUnavailable) {
  const FaultAppCase app = MakeSmallGnmf();
  const Bindings bindings = app.MakeBindings();
  RunConfig config = BaseConfig(3);
  config.min_workers = 3;  // any death breaks quorum
  config.fault.enabled = true;
  config.fault.death_step = 0;
  config.fault.death_worker = 2;
  const auto outcome = RunProgram(app.program, bindings, config);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(outcome.status().message().find("quorum"), std::string::npos)
      << outcome.status();
}

class DeathSweepTest : public ::testing::TestWithParam<int> {
 protected:
  static FaultAppCase MakeCase(int index) {
    return index == 0 ? MakeSmallGnmf() : MakeSmallPageRank();
  }
};

TEST_P(DeathSweepTest, QuorumBudgetedDeathsStayBitIdenticalAcrossSeeds) {
  const FaultAppCase app = MakeCase(GetParam());
  const Bindings bindings = app.MakeBindings();
  const RunConfig clean = BaseConfig(3);
  const auto baseline = RunProgram(app.program, bindings, clean);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  int64_t total_deaths = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    RunConfig config = clean;
    config.min_workers = 2;  // the quorum boundary: at most one death
    config.fault.enabled = true;
    config.fault.seed = seed;
    config.fault.death_prob = 0.05;
    const std::string context =
        app.name + "/death/seed=" + std::to_string(seed);
    const auto outcome = RunProgram(app.program, bindings, config);
    ASSERT_TRUE(outcome.ok()) << context << ": " << outcome.status();
    ExpectBitIdentical(baseline->result, outcome->result, context);
    const ExecStats& stats = outcome->result.stats;
    // The death budget stops at the quorum: never more than
    // num_workers - min_workers deaths, and never a failed run.
    EXPECT_LE(stats.workers_dead, 1) << context;
    EXPECT_EQ(stats.net_stale_applied, 0) << context;
    total_deaths += stats.workers_dead;
  }
  // The sweep must actually kill workers, not pass vacuously.
  EXPECT_GT(total_deaths, 0) << app.name;
}

INSTANTIATE_TEST_SUITE_P(Apps, DeathSweepTest, ::testing::Values(0, 1),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return info.param == 0 ? std::string("gnmf")
                                                  : std::string("pagerank");
                         });

}  // namespace
}  // namespace dmac
