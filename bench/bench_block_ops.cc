// Kernel micro-benchmarks (google-benchmark): the block-level primitives
// every distributed operator is built from.
#include <benchmark/benchmark.h>

#include "matrix/block_ops.h"

namespace dmac {
namespace {

void BM_MultiplyDenseDense(benchmark::State& state) {
  const int64_t n = state.range(0);
  Block a = RandomDenseBlock(n, n, 1);
  Block b = RandomDenseBlock(n, n, 2);
  for (auto _ : state) {
    auto c = Multiply(a, b);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MultiplyDenseDense)->Arg(64)->Arg(128)->Arg(256);

void BM_MultiplySparseDense(benchmark::State& state) {
  const int64_t n = state.range(0);
  Block a = RandomSparseBlock(n, n, 0.01, 1);
  Block b = RandomDenseBlock(n, n, 2);
  for (auto _ : state) {
    auto c = Multiply(a, b);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_MultiplySparseDense)->Arg(256)->Arg(512)->Arg(1024);

void BM_SpGemm(benchmark::State& state) {
  const int64_t n = state.range(0);
  Block a = RandomSparseBlock(n, n, 0.01, 1);
  Block b = RandomSparseBlock(n, n, 0.01, 2);
  for (auto _ : state) {
    auto c = MultiplySparse(a.sparse(), b.sparse());
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_SpGemm)->Arg(256)->Arg(512)->Arg(1024);

void BM_MultiplyAccumulate(benchmark::State& state) {
  const int64_t n = state.range(0);
  Block a = RandomSparseBlock(n, n, 0.02, 1);
  Block b = RandomDenseBlock(n, n, 2);
  DenseBlock acc(n, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MultiplyAccumulate(a, b, &acc));
  }
}
BENCHMARK(BM_MultiplyAccumulate)->Arg(256)->Arg(512);

void BM_CellMultiplySparse(benchmark::State& state) {
  const int64_t n = state.range(0);
  Block a = RandomSparseBlock(n, n, 0.05, 1);
  Block b = RandomDenseBlock(n, n, 2);
  for (auto _ : state) {
    auto c = CellMultiply(a, b);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_CellMultiplySparse)->Arg(512)->Arg(1024);

void BM_TransposeCsc(benchmark::State& state) {
  const int64_t n = state.range(0);
  Block a = RandomSparseBlock(n, n, 0.02, 1);
  for (auto _ : state) {
    Block t = a.Transposed();
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_TransposeCsc)->Arg(512)->Arg(1024);

void BM_TransposeDense(benchmark::State& state) {
  const int64_t n = state.range(0);
  Block a = RandomDenseBlock(n, n, 1);
  for (auto _ : state) {
    Block t = a.Transposed();
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_TransposeDense)->Arg(256)->Arg(512);

void BM_CompactFromDense(benchmark::State& state) {
  const int64_t n = state.range(0);
  DenseBlock sparse_data = RandomSparseBlock(n, n, 0.05, 1).ToDense();
  for (auto _ : state) {
    Block c = CompactFromDense(sparse_data, 0.5);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_CompactFromDense)->Arg(512)->Arg(1024);

void BM_SumSparse(benchmark::State& state) {
  const int64_t n = state.range(0);
  Block a = RandomSparseBlock(n, n, 0.02, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sum(a));
  }
}
BENCHMARK(BM_SumSparse)->Arg(1024);

}  // namespace
}  // namespace dmac
