// Cost-based plan search vs greedy Algorithm 1 (ROADMAP item 2).
//
// For GNMF (Netflix-shaped, §6.2) and PageRank (§6.4), runs 10 iterations
// planned two ways — greedy, and beam plan search over multiply algorithms /
// leaf schemes / heuristic toggles — and reports estimated seconds,
// estimated communication, measured wall time, and the search's driver
// overhead relative to one execution iteration. Emits BENCH_plansearch.json
// (schema dmac-plansearch-v1; override with --out=PATH). --calibration FILE
// prices candidates with measured kernel rates (CALIBRATION.json) instead
// of the built-in defaults; --scale S scales the workloads like the other
// figure benchmarks (DMAC_BENCH_SCALE also applies).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/gnmf.h"
#include "apps/pagerank.h"
#include "apps/runner.h"
#include "bench_util.h"
#include "data/netflix_gen.h"
#include "data/synthetic.h"
#include "runtime/block_size.h"

using namespace dmac;
using namespace dmac::bench;

namespace {

struct WorkloadResult {
  std::string name;
  int iterations = 0;
  double greedy_est_seconds = 0;
  double greedy_est_comm_bytes = 0;
  double greedy_wall_seconds = 0;
  double searched_est_seconds = 0;
  double searched_est_comm_bytes = 0;
  double searched_wall_seconds = 0;
  double search_seconds = 0;
  int64_t candidates = 0;
  std::string decisions;

  /// Search driver time over one measured execution iteration.
  double OverheadVsIteration() const {
    const double per_iter = greedy_wall_seconds / iterations;
    return per_iter > 0 ? search_seconds / per_iter : 0;
  }
};

int RunWorkload(const std::string& name, const Program& program,
                const Bindings& bindings, int64_t block_size, int iterations,
                const std::string& calibration, bool strict,
                WorkloadResult* out) {
  RunConfig greedy_cfg;
  greedy_cfg.block_size = block_size;
  RunConfig search_cfg = greedy_cfg;
  search_cfg.plan_search = PlanSearchMode::kBeam;
  search_cfg.calibration_path = calibration;

  auto greedy = RunProgram(program, bindings, greedy_cfg);
  if (!greedy.ok()) {
    std::fprintf(stderr, "%s greedy: %s\n", name.c_str(),
                 greedy.status().ToString().c_str());
    return 1;
  }
  auto searched = RunProgram(program, bindings, search_cfg);
  if (!searched.ok()) {
    std::fprintf(stderr, "%s searched: %s\n", name.c_str(),
                 searched.status().ToString().c_str());
    return 1;
  }

  out->name = name;
  out->iterations = iterations;
  out->greedy_est_seconds = searched->search.greedy_seconds;
  out->greedy_est_comm_bytes = searched->search.greedy_comm_bytes;
  out->greedy_wall_seconds = greedy->execute_seconds;
  out->searched_est_seconds = searched->search.best_seconds;
  out->searched_est_comm_bytes = searched->search.best_comm_bytes;
  out->searched_wall_seconds = searched->execute_seconds;
  out->search_seconds = searched->search.seconds;
  out->candidates = searched->search.candidates;
  out->decisions = searched->search.best_decisions;

  // Ranking is by estimated seconds; at paper-like scale that winner also
  // communicates less (the committed BENCH_plansearch.json is generated
  // with --strict to enforce it), but a shrunken smoke run may legally
  // trade comm for compute.
  if (out->searched_est_comm_bytes > out->greedy_est_comm_bytes + 1e-6) {
    std::fprintf(stderr,
                 "%s: searched plan estimates MORE comm than greedy "
                 "(%.0f > %.0f)%s\n",
                 name.c_str(), out->searched_est_comm_bytes,
                 out->greedy_est_comm_bytes,
                 strict ? "" : " [non-strict: continuing]");
    return strict ? 1 : 0;
  }
  return 0;
}

void PrintResult(const WorkloadResult& r) {
  std::printf("%-9s | est %7.3fs -> %7.3fs | comm %9s -> %9s | "
              "wall %6.2fs -> %6.2fs | search %5.1fms (%.1f%% of an iter)\n",
              r.name.c_str(), r.greedy_est_seconds, r.searched_est_seconds,
              HumanBytes(r.greedy_est_comm_bytes).c_str(),
              HumanBytes(r.searched_est_comm_bytes).c_str(),
              r.greedy_wall_seconds, r.searched_wall_seconds,
              r.search_seconds * 1e3, r.OverheadVsIteration() * 100);
  std::printf("          | plan: %s\n", r.decisions.c_str());
}

std::string ResultJson(const WorkloadResult& r) {
  char buf[512];
  std::string out = "    {\"name\": \"" + r.name + "\",\n";
  std::snprintf(buf, sizeof(buf),
                "     \"iterations\": %d,\n"
                "     \"greedy\": {\"est_seconds\": %.6f, "
                "\"est_comm_bytes\": %.0f, \"wall_seconds\": %.4f},\n"
                "     \"searched\": {\"est_seconds\": %.6f, "
                "\"est_comm_bytes\": %.0f, \"wall_seconds\": %.4f},\n"
                "     \"search_seconds\": %.6f,\n"
                "     \"search_overhead_vs_iteration\": %.4f,\n"
                "     \"candidates\": %lld,\n",
                r.iterations, r.greedy_est_seconds, r.greedy_est_comm_bytes,
                r.greedy_wall_seconds, r.searched_est_seconds,
                r.searched_est_comm_bytes, r.searched_wall_seconds,
                r.search_seconds, r.OverheadVsIteration(),
                static_cast<long long>(r.candidates));
  out += buf;
  out += "     \"decisions\": \"" + r.decisions + "\"}";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ObsSession obs;
  std::string out_path = "BENCH_plansearch.json";
  std::string calibration;
  double scale_div = 16;
  bool strict = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--calibration=", 14) == 0) {
      calibration = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      scale_div = std::atof(argv[i] + 8);
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--out=PATH] [--calibration=FILE] "
                   "[--scale=DIV] [--strict]\n",
                   argv[0]);
      return 2;
    }
  }

  const double scale = ScaleFactor(scale_div);
  const int iterations = 10;
  PrintHeader("Plan search vs greedy (10 iterations, calibration=" +
              (calibration.empty() ? std::string("builtin") : calibration) +
              ")");

  std::vector<WorkloadResult> results;

  {
    NetflixSpec spec = NetflixSpec{}.Scaled(scale);
    const int64_t factors =
        std::max<int64_t>(8, static_cast<int64_t>(200 / scale) * 4);
    const int64_t bs = ChooseBlockSize({spec.users, spec.movies}, 4, 2);
    GnmfConfig config{spec.users, spec.movies, spec.sparsity, factors,
                      iterations};
    LocalMatrix v = NetflixRatings(spec, bs, 42);
    Bindings bindings{{"V", &v}};
    WorkloadResult r;
    if (RunWorkload("gnmf", BuildGnmfProgram(config), bindings, bs,
                    iterations, calibration, strict, &r) != 0) {
      return 1;
    }
    PrintResult(r);
    results.push_back(std::move(r));
  }

  {
    const int64_t nodes = std::max<int64_t>(
        512, static_cast<int64_t>(10485760 / scale));
    const double sparsity = 10.0 / static_cast<double>(nodes);
    const int64_t bs = ChooseBlockSize({nodes, nodes}, 4, 2);
    PageRankConfig config{nodes, sparsity, iterations, 0.85};
    LocalMatrix link = SyntheticSparse(nodes, nodes, sparsity, bs, 7);
    LocalMatrix d = SyntheticDense(1, nodes, bs, 9);
    Bindings bindings{{"link", &link}, {"D", &d}};
    WorkloadResult r;
    if (RunWorkload("pagerank", BuildPageRankProgram(config), bindings, bs,
                    iterations, calibration, strict, &r) != 0) {
      return 1;
    }
    PrintResult(r);
    results.push_back(std::move(r));
  }

  std::string json = "{\n  \"schema\": \"dmac-plansearch-v1\",\n";
  json += "  \"scale_divisor\": " + std::to_string(scale) + ",\n";
  json += "  \"calibration\": \"" +
          (calibration.empty() ? std::string("builtin") : calibration) +
          "\",\n";
  json += "  \"workloads\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    json += ResultJson(results[i]);
    json += i + 1 < results.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
