// Shared helpers for the figure-reproduction benchmark binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/session.h"
#include "runtime/exec_stats.h"

namespace dmac {
namespace bench {

/// Opt-in observability for any bench binary (docs/observability.md):
/// setting DMAC_TRACE_OUT and/or DMAC_METRICS_OUT enables tracing/metrics
/// for the whole run and writes the files when the benchmark exits. Unset
/// (the default, and how all reported numbers are measured) this is a no-op
/// and the observability layer stays on its disabled fast path.
class ObsSession {
 public:
  ObsSession() {
    if (const char* env = std::getenv("DMAC_TRACE_OUT")) trace_out_ = env;
    if (const char* env = std::getenv("DMAC_METRICS_OUT")) metrics_out_ = env;
    if (!trace_out_.empty() || !metrics_out_.empty()) EnableObservability();
  }
  ~ObsSession() {
    if (!trace_out_.empty()) {
      Status st = WriteTraceFile(trace_out_);
      if (!st.ok()) {
        std::fprintf(stderr, "DMAC_TRACE_OUT: %s\n", st.ToString().c_str());
      }
    }
    if (!metrics_out_.empty()) {
      Status st = WriteMetricsFile(metrics_out_);
      if (!st.ok()) {
        std::fprintf(stderr, "DMAC_METRICS_OUT: %s\n", st.ToString().c_str());
      }
    }
  }
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

 private:
  std::string trace_out_;
  std::string metrics_out_;
};

/// Global scale divisor: workloads are the paper's divided by this factor.
/// Override with the DMAC_BENCH_SCALE environment variable (>1 = smaller
/// and faster, <1 = closer to paper scale).
inline double ScaleFactor(double default_scale) {
  if (const char* env = std::getenv("DMAC_BENCH_SCALE")) {
    const double v = std::atof(env);
    if (v > 0) return default_scale * v;
  }
  return default_scale;
}

inline std::string HumanBytes(double bytes) {
  char buf[64];
  if (bytes >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", bytes / 1e9);
  } else if (bytes >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", bytes / 1e6);
  } else if (bytes >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2f KB", bytes / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  }
  return buf;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

/// The cluster network model used to convert measured compute + counted
/// bytes into cluster-equivalent seconds (≈1 Gbit/s, as in the paper's
/// testbed class).
inline NetworkModel PaperNetwork() { return NetworkModel{}; }

}  // namespace bench
}  // namespace dmac
