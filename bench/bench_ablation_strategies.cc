// Ablation — the three multiplication strategies (paper Fig. 2).
//
// For several operand-shape regimes, force RMM1, RMM2, and CPMM on the same
// multiply via hand-built plans and report measured communication and
// cluster-equivalent time, next to what the DMac planner picked.
#include <cstdio>

#include "apps/runner.h"
#include "bench_util.h"
#include "data/synthetic.h"
#include "runtime/block_size.h"
#include "runtime/executor.h"

using namespace dmac;
using namespace dmac::bench;

namespace {

/// Builds a three-step plan (load A, load B, multiply) with the schemes a
/// given strategy requires.
Plan ForcedMultiplyPlan(Shape a_shape, double a_sparsity, Shape b_shape,
                        double b_sparsity, MultAlgo algo) {
  Plan plan;
  Scheme a_scheme, b_scheme, c_scheme;
  switch (algo) {
    case MultAlgo::kRMM1:
      a_scheme = Scheme::kBroadcast;
      b_scheme = Scheme::kCol;
      c_scheme = Scheme::kCol;
      break;
    case MultAlgo::kRMM2:
      a_scheme = Scheme::kRow;
      b_scheme = Scheme::kBroadcast;
      c_scheme = Scheme::kRow;
      break;
    default:
      a_scheme = Scheme::kCol;
      b_scheme = Scheme::kRow;
      c_scheme = Scheme::kRow;
      break;
  }

  auto add_node = [&](const std::string& name, Scheme s, Shape shape,
                      double sparsity) {
    PlanNode node;
    node.id = static_cast<int>(plan.nodes.size());
    node.matrix = name;
    node.schemes = SchemeBit(s);
    node.stats = {shape, sparsity};
    plan.nodes.push_back(node);
    return node.id;
  };
  const int a_node = add_node("A", a_scheme, a_shape, a_sparsity);
  const int b_node = add_node("B", b_scheme, b_shape, b_sparsity);
  const int c_node = add_node("C", c_scheme,
                              {a_shape.rows, b_shape.cols}, 1.0);

  auto add_load = [&](const std::string& src, int out, Shape shape,
                      double sparsity) {
    PlanStep step;
    step.id = static_cast<int>(plan.steps.size());
    step.kind = StepKind::kLoad;
    step.output = out;
    step.source = src;
    step.decl_shape = shape;
    step.decl_sparsity = sparsity;
    plan.steps.push_back(step);
  };
  add_load("A", a_node, a_shape, a_sparsity);
  add_load("B", b_node, b_shape, b_sparsity);

  PlanStep mul;
  mul.id = static_cast<int>(plan.steps.size());
  mul.kind = StepKind::kCompute;
  mul.op_kind = OpKind::kMultiply;
  mul.mult_algo = algo;
  mul.output_comm = algo == MultAlgo::kCPMM;
  mul.inputs = {a_node, b_node};
  mul.output = c_node;
  plan.steps.push_back(mul);

  plan.outputs.push_back({"C", c_node, false});
  DMAC_CHECK(plan.Finalize().ok());
  return plan;
}

}  // namespace

int main() {
  ObsSession obs;
  const double scale = ScaleFactor(40);

  struct Regime {
    const char* name;
    Shape a, b;
    double a_sparsity, b_sparsity;
  };
  const int64_t big = static_cast<int64_t>(480189 / scale);
  const int64_t mid = static_cast<int64_t>(17770 / scale * 4);
  const Regime regimes[] = {
      {"skinny (big x mid) * (mid x 64)", {big, mid}, {mid, 64}, 0.01, 1.0},
      {"tall-gram (mid x big) * (big x 64)", {mid, big}, {big, 64}, 0.01, 1.0},
      {"square x square", {mid, mid}, {mid, mid}, 0.05, 0.05},
  };

  PrintHeader("Ablation: forced multiplication strategies");
  const NetworkModel net = PaperNetwork();

  for (const Regime& r : regimes) {
    const int64_t bs = ChooseBlockSize(
        {std::max(r.a.rows, r.b.cols), std::max(r.a.cols, r.b.rows)}, 4, 2);
    LocalMatrix a = r.a_sparsity < 1.0
                        ? SyntheticSparse(r.a.rows, r.a.cols, r.a_sparsity,
                                          bs, 3)
                        : SyntheticDense(r.a.rows, r.a.cols, bs, 3);
    LocalMatrix b = r.b_sparsity < 1.0
                        ? SyntheticSparse(r.b.rows, r.b.cols, r.b_sparsity,
                                          bs, 4)
                        : SyntheticDense(r.b.rows, r.b.cols, bs, 4);
    Bindings bindings{{"A", &a}, {"B", &b}};

    std::printf("\n%s  (block %lld)\n", r.name, static_cast<long long>(bs));
    std::printf("%8s | %12s | %10s\n", "strategy", "comm", "sim time");
    std::printf("---------+--------------+-----------\n");

    for (MultAlgo algo : {MultAlgo::kRMM1, MultAlgo::kRMM2, MultAlgo::kCPMM}) {
      Plan plan = ForcedMultiplyPlan(r.a, r.a_sparsity, r.b, r.b_sparsity,
                                     algo);
      ExecutorOptions eopts;
      eopts.num_workers = 4;
      eopts.block_size = bs;
      auto run = Executor(eopts).Execute(plan, bindings);
      if (!run.ok()) {
        std::fprintf(stderr, "%s: %s\n", MultAlgoName(algo),
                     run.status().ToString().c_str());
        return 1;
      }
      std::printf("%8s | %12s | %9.3fs\n", MultAlgoName(algo),
                  HumanBytes(run->stats.comm_bytes()).c_str(),
                  run->stats.SimulatedSeconds(net));
    }

    // What DMac's cost model picks.
    ProgramBuilder pb;
    Mat ma = pb.Load("A", r.a, r.a_sparsity);
    Mat mb = pb.Load("B", r.b, r.b_sparsity);
    Mat c = pb.Var("C");
    pb.Assign(c, ma.mm(mb));
    pb.Output(c);
    auto plan = PlanProgram(pb.Build(), RunConfig{});
    if (!plan.ok()) return 1;
    for (const PlanStep& s : plan->steps) {
      if (s.kind == StepKind::kCompute && s.op_kind == OpKind::kMultiply) {
        std::printf("planner's choice: %s\n", MultAlgoName(s.mult_algo));
      }
    }
  }
  return 0;
}
