// Figure 10 — scalability (paper §6.5).
//
//   10(a)/(b): per-iteration time vs #non-zeros in V (GNMF, LinReg),
//              columns fixed at the paper's 100,000 (scaled)
//   10(c)/(d): per-iteration time vs number of workers, 4 → 24
#include <cstdio>
#include <vector>

#include "apps/gnmf.h"
#include "apps/linear_regression.h"
#include "apps/runner.h"
#include "bench_util.h"
#include "data/synthetic.h"
#include "runtime/block_size.h"

using namespace dmac;
using namespace dmac::bench;

namespace {

struct Pair {
  double dmac_seconds = -1;
  double sysml_seconds = -1;
};

Pair RunBoth(const Program& p, const Bindings& bindings, int64_t bs,
             int workers) {
  Pair out;
  RunConfig dmac_cfg;
  dmac_cfg.block_size = bs;
  dmac_cfg.num_workers = workers;
  auto r1 = RunProgram(p, bindings, dmac_cfg);
  RunConfig sysml_cfg = dmac_cfg;
  sysml_cfg.exploit_dependencies = false;
  auto r2 = RunProgram(p, bindings, sysml_cfg);
  if (!r1.ok() || !r2.ok()) {
    std::fprintf(stderr, "run failed: %s / %s\n",
                 r1.ok() ? "ok" : r1.status().ToString().c_str(),
                 r2.ok() ? "ok" : r2.status().ToString().c_str());
    return out;
  }
  out.dmac_seconds = r1->result.stats.SimulatedSeconds(PaperNetwork());
  out.sysml_seconds = r2->result.stats.SimulatedSeconds(PaperNetwork());
  return out;
}

}  // namespace

int main() {
  ObsSession obs;
  const double scale = ScaleFactor(400);
  const int iterations = 3;
  const int64_t cols = static_cast<int64_t>(100000 / 10);
  const double row_sparsity = 1e-3;  // nnz per row ≈ 10

  // ---- 10(a)/(b): data-size sweep ----------------------------------------
  PrintHeader("Figure 10(a)/(b): time per iteration vs #nonzeros in V");
  std::printf("%12s | %-25s | %-25s\n", "", "GNMF  DMac / SysML-S (s)",
              "LinReg  DMac / SysML-S (s)");
  std::printf("%12s-+---------------------------+--------------------------\n",
              "------------");

  for (double nnz_m : {250.0, 500.0, 750.0, 1000.0, 1250.0, 1500.0}) {
    const int64_t nnz = static_cast<int64_t>(nnz_m * 1e6 / scale);
    const int64_t rows = static_cast<int64_t>(
        static_cast<double>(nnz) / (row_sparsity * cols));
    const int64_t bs = ChooseBlockSize({rows, cols}, 4, 2);
    LocalMatrix v = SyntheticSparse(rows, cols, row_sparsity, bs, 21);

    GnmfConfig gnmf_config{rows, cols, row_sparsity, 32, iterations};
    Bindings gnmf_bindings{{"V", &v}};
    Pair gnmf = RunBoth(BuildGnmfProgram(gnmf_config), gnmf_bindings, bs, 4);
    if (gnmf.dmac_seconds < 0) return 1;

    LocalMatrix y = SyntheticDense(rows, 1, bs, 22);
    LinRegConfig lr_config{rows, cols, row_sparsity, iterations, 1e-6};
    Bindings lr_bindings{{"V", &v}, {"y", &y}};
    Pair lr = RunBoth(BuildLinearRegressionProgram(lr_config), lr_bindings,
                      bs, 4);
    if (lr.dmac_seconds < 0) return 1;

    std::printf("%9.1fM   | %10.3f / %-12.3f | %10.3f / %-10.3f\n",
                static_cast<double>(nnz) / 1e6,
                gnmf.dmac_seconds / iterations,
                gnmf.sysml_seconds / iterations,
                lr.dmac_seconds / iterations,
                lr.sysml_seconds / iterations);
  }
  std::printf("(paper shape: the DMac/SystemML-S gap widens as V grows)\n");

  // ---- 10(c)/(d): worker sweep ---------------------------------------------
  PrintHeader("Figure 10(c)/(d): time per iteration vs number of workers");
  const int64_t nnz = static_cast<int64_t>(2e9 / scale);
  const int64_t rows = static_cast<int64_t>(
      static_cast<double>(nnz) / (row_sparsity * cols));
  std::printf("fixed V: %lld x %lld, ~%lld nnz\n",
              static_cast<long long>(rows), static_cast<long long>(cols),
              static_cast<long long>(nnz));
  std::printf("%8s | %-25s | %-25s\n", "workers",
              "GNMF  DMac / SysML-S (s)", "LinReg  DMac / SysML-S (s)");
  std::printf("---------+---------------------------+--------------------------\n");

  for (int workers : {4, 8, 12, 16, 20, 24}) {
    const int64_t bs = ChooseBlockSize({rows, cols}, workers, 2);
    LocalMatrix v = SyntheticSparse(rows, cols, row_sparsity, bs, 31);
    // The paper's factor size (200) keeps per-iteration compute substantial
    // relative to communication, which is what makes worker scaling visible.
    GnmfConfig gnmf_config{rows, cols, row_sparsity, 128, iterations};
    Bindings gnmf_bindings{{"V", &v}};
    Pair gnmf = RunBoth(BuildGnmfProgram(gnmf_config), gnmf_bindings, bs,
                        workers);
    if (gnmf.dmac_seconds < 0) return 1;

    LocalMatrix y = SyntheticDense(rows, 1, bs, 32);
    LinRegConfig lr_config{rows, cols, row_sparsity, iterations, 1e-6};
    Bindings lr_bindings{{"V", &v}, {"y", &y}};
    Pair lr = RunBoth(BuildLinearRegressionProgram(lr_config), lr_bindings,
                      bs, workers);
    if (lr.dmac_seconds < 0) return 1;

    std::printf("%8d | %10.3f / %-12.3f | %10.3f / %-10.3f\n", workers,
                gnmf.dmac_seconds / iterations,
                gnmf.sysml_seconds / iterations,
                lr.dmac_seconds / iterations, lr.sysml_seconds / iterations);
  }
  std::printf("(paper shape: DMac improves steadily from 4 to 20+ workers)\n");
  return 0;
}
