// Figure 7 — In-Place vs Buffer memory usage (paper §6.3).
//
// Blocked multiplication A·A on the four Table-3 graph stand-ins, driving
// the worker-local block engine exactly as a stage execution would: one
// task per result block, results handed to the output sink (the paper's
// workers write stage output to local disk, §5.2, so finished blocks do
// not count against engine memory).
//
// In-Place folds all contributing products into one accumulator per task;
// Buffer materializes every partial block product first and aggregates at
// the end — its peak grows with the total size of the partials, which is
// why the paper's gap narrows on the sparser graphs.
#include <cstdio>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "data/graph_gen.h"
#include "matrix/mem_tracker.h"
#include "runtime/block_size.h"
#include "runtime/local_engine.h"

using namespace dmac;
using namespace dmac::bench;

namespace {

/// Runs the full A·A block multiplication through the local engine (all
/// workers' tasks), discarding finished blocks, and returns peak engine
/// bytes above the input.
double EnginePeak(const LocalMatrix& adj, LocalMode mode, int threads) {
  ThreadPool pool(static_cast<size_t>(threads));
  BufferPool buffers(static_cast<size_t>(threads) * 2);
  LocalEngine engine(&pool, &buffers, mode, 0.5);

  const BlockGrid& grid = adj.grid();
  const BlockGrid out_grid{{adj.rows(), adj.cols()}, adj.block_size()};
  std::vector<MultiplyTask> tasks;
  for (int64_t bi = 0; bi < out_grid.block_rows(); ++bi) {
    for (int64_t bj = 0; bj < out_grid.block_cols(); ++bj) {
      tasks.push_back({bi, bj, 0, grid.block_cols()});
    }
  }
  auto source = [&adj](int64_t bi, int64_t bj) {
    return std::shared_ptr<const Block>(std::shared_ptr<void>(),
                                        &adj.BlockAt(bi, bj));
  };

  MemTracker::Global().ResetPeak();
  const int64_t before = MemTracker::Global().current_bytes();
  Status st = engine.MultiplyBlocks(out_grid, tasks, source, source,
                                    [](int64_t, int64_t, Block) {
                                      // "written to local disk"
                                    });
  if (!st.ok()) {
    std::fprintf(stderr, "engine: %s\n", st.ToString().c_str());
    return -1;
  }
  return static_cast<double>(MemTracker::Global().peak_bytes() - before);
}

}  // namespace

int main() {
  ObsSession obs;
  const double scale = ScaleFactor(150);
  const int threads = 2;

  struct Row {
    const char* name;
    GraphSpec spec;
  };
  const Row rows[] = {
      {"soc-pokec", SocPokec().Scaled(scale)},
      {"cit-Patents", CitPatents().Scaled(scale)},
      {"LiveJournal", LiveJournal().Scaled(scale * 1.2)},
      {"Wikipedia", Wikipedia().Scaled(scale * 12)},
  };

  PrintHeader("Figure 7: In-Place vs Buffer local engine memory (A %*% A)");
  std::printf("%-12s | %12s | %12s | %12s | %7s\n", "graph", "nodes/edges",
              "In-Place", "Buffer", "ratio");
  std::printf("-------------+--------------+--------------+--------------+--------\n");

  for (const Row& row : rows) {
    // The engine sees one worker's share of a K-worker cluster: K·L tasks
    // per worker by Eq. 3, i.e. blocks at 1/sqrt(K) of the single-node
    // bound for a 4-worker cluster.
    const int64_t bs =
        ChooseBlockSize({row.spec.nodes, row.spec.nodes}, 4 * 4, threads);
    LocalMatrix adj = AdjacencyMatrix(row.spec, bs, 7);
    const double inplace = EnginePeak(adj, LocalMode::kInPlace, threads);
    const double buffer = EnginePeak(adj, LocalMode::kBuffer, threads);
    if (inplace < 0 || buffer < 0) return 1;
    char dims[48];
    std::snprintf(dims, sizeof(dims), "%lldk/%lldk",
                  static_cast<long long>(row.spec.nodes / 1000),
                  static_cast<long long>(row.spec.edges / 1000));
    std::printf("%-12s | %12s | %12s | %12s | %6.2fx\n", row.name, dims,
                HumanBytes(inplace).c_str(), HumanBytes(buffer).c_str(),
                buffer / inplace);
  }
  std::printf("\nPaper shape: Buffer >> In-Place on the denser graphs; the\n"
              "gap narrows on the sparser ones (soc-pokec, cit-Patents).\n");
  return 0;
}
