// Table 4 — matrix multiplication across ScaLAPACK, SciDB, SystemML-S, and
// DMac (paper §6.6).
//
//   MM-Sparse: V1 (Netflix-shaped, sparsity ~0.01) × H (dense, 200 cols)
//   MM-Dense:  V2 (same dimensions, dense)         × H
//
// Expected shape (paper: 107s / 11m35s / 18.5s / 17s on sparse;
// 116s / 12m15s / 133s / 121s on dense): DMac ≈ SystemML-S, both far ahead
// of ScaLAPACK/SciDB on the sparse input because the comparators treat
// sparse as dense; on the dense input DMac is comparable to ScaLAPACK,
// and SciDB pays redistribution + chunk overheads throughout.
#include <algorithm>
#include <cstdio>

#include "apps/runner.h"
#include "baseline/scidb_sim.h"
#include "bench_util.h"
#include "data/synthetic.h"
#include "runtime/block_size.h"

using namespace dmac;
using namespace dmac::bench;

namespace {

double RunDmacStyle(const LocalMatrix& a, const LocalMatrix& b,
                    double a_sparsity, int64_t bs, bool exploit) {
  ProgramBuilder pb;
  Mat ma = pb.Load("A", a.shape(), a_sparsity);
  Mat mb = pb.Load("B", b.shape(), 1.0);
  Mat c = pb.Var("C");
  pb.Assign(c, ma.mm(mb));
  pb.Output(c);
  Program p = pb.Build();
  Bindings bindings{{"A", &a}, {"B", &b}};
  RunConfig config;
  config.block_size = bs;
  config.num_workers = 8;  // the paper's 8-node table-4 cluster
  config.exploit_dependencies = exploit;
  auto run = RunProgram(p, bindings, config);
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return -1;
  }
  return run->result.stats.SimulatedSeconds(PaperNetwork());
}

}  // namespace

int main() {
  ObsSession obs;
  const double scale = ScaleFactor(24);
  // V1: Netflix-dimension sparse matrix (as 17770 x 480189 so that the
  // multiply by the 200-column dense H type-checks), scaled.
  const int64_t rows = static_cast<int64_t>(17770 / scale * 4);
  const int64_t inner = static_cast<int64_t>(480189 / scale);
  const int64_t cols = 200;
  const double sparse_s = 0.01;

  // Eq. 3 must hold for every matrix touched — in particular the output,
  // whose blocks are the unit of local parallelism.
  const int64_t bs = std::min({ChooseBlockSize({rows, inner}, 8, 2),
                               ChooseBlockSize({inner, cols}, 8, 2),
                               ChooseBlockSize({rows, cols}, 8, 2)});
  LocalMatrix v1 = SyntheticSparse(rows, inner, sparse_s, bs, 3);
  LocalMatrix v2 = SyntheticDense(rows, inner, bs, 4);
  LocalMatrix h = SyntheticDense(inner, cols, bs, 5);

  // ScaLAPACK/SciDB run with their own (large, single-threaded-process)
  // panel blocking — feeding them DMac's small blocks would drown SUMMA in
  // per-block messages no real ScaLAPACK run pays.
  const int64_t bs_sca = ChooseBlockSize({rows, inner}, 8, 1);
  LocalMatrix v1_sca = SyntheticSparse(rows, inner, sparse_s, bs_sca, 3);
  LocalMatrix v2_sca = SyntheticDense(rows, inner, bs_sca, 4);
  LocalMatrix h_sca = SyntheticDense(inner, cols, bs_sca, 5);

  PrintHeader("Table 4: MM across systems  (A " + std::to_string(rows) + "x" +
              std::to_string(inner) + " times B " + std::to_string(inner) +
              "x" + std::to_string(cols) + ", block " + std::to_string(bs) +
              ")");

  const ProcessGrid grid{2, 4};  // 8 simulated processes
  const NetworkModel net = PaperNetwork();

  std::printf("%-10s | %10s | %10s | %10s | %10s\n", "", "ScaLAPACK",
              "SciDB", "SystemML-S", "DMac");
  std::printf("-----------+------------+------------+------------+-----------\n");

  for (int round = 0; round < 2; ++round) {
    const bool sparse = round == 0;
    const LocalMatrix& a = sparse ? v1 : v2;
    const LocalMatrix& a_sca = sparse ? v1_sca : v2_sca;
    const double a_sparsity = sparse ? sparse_s : 1.0;

    auto scalapack = ScalapackSim(grid).Multiply(a_sca, h_sca);
    if (!scalapack.ok()) {
      std::fprintf(stderr, "%s\n", scalapack.status().ToString().c_str());
      return 1;
    }
    ScidbOptions scidb_opts;
    scidb_opts.grid = grid;
    auto scidb = ScidbSim(scidb_opts).Multiply(a_sca, h_sca);
    if (!scidb.ok()) {
      std::fprintf(stderr, "%s\n", scidb.status().ToString().c_str());
      return 1;
    }
    const double sysml = RunDmacStyle(a, h, a_sparsity, bs, false);
    const double dmac = RunDmacStyle(a, h, a_sparsity, bs, true);
    if (sysml < 0 || dmac < 0) return 1;

    std::printf("%-10s | %9.2fs | %9.2fs | %9.2fs | %8.2fs\n",
                sparse ? "MM-Sparse" : "MM-Dense",
                scalapack->SimulatedSeconds(net),
                scidb->SimulatedSeconds(net), sysml, dmac);
  }
  std::printf("\n(paper: sparse 107s / 695s / 18.5s / 17s;"
              " dense 116s / 735s / 133s / 121s)\n");
  return 0;
}
