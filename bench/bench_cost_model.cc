// Cost-model validation: the planner's worst-case communication estimate
// versus the bytes actually moved at runtime, for every application and
// both planners. The estimate must upper-bound measured traffic (worst-case
// sparsity) while staying within a small factor — this is what makes
// Equation 1's argmin trustworthy.
#include <cstdio>

#include "apps/collab_filter.h"
#include "apps/gnmf.h"
#include "apps/linear_regression.h"
#include "apps/logistic_regression.h"
#include "apps/pagerank.h"
#include "apps/runner.h"
#include "apps/svd_lanczos.h"
#include "bench_util.h"
#include "data/graph_gen.h"
#include "data/netflix_gen.h"
#include "data/synthetic.h"
#include "runtime/block_size.h"

using namespace dmac;
using namespace dmac::bench;

int main() {
  ObsSession obs;
  const double scale = ScaleFactor(400);
  PrintHeader("Cost-model validation: plan estimate vs measured bytes");
  std::printf("%-10s | %-9s | %12s | %12s | %6s\n", "app", "planner",
              "estimated", "measured", "ratio");
  std::printf("-----------+-----------+--------------+--------------+-------\n");

  struct Case {
    const char* name;
    Program program;
    std::vector<std::pair<std::string, LocalMatrix>> inputs;
  };
  std::vector<Case> cases;

  {
    NetflixSpec spec = NetflixSpec{}.Scaled(scale / 16);
    const int64_t bs = ChooseBlockSize({spec.users, spec.movies}, 4, 2);
    Case c{"GNMF",
           BuildGnmfProgram({spec.users, spec.movies, spec.sparsity, 24, 3}),
           {}};
    c.inputs.emplace_back("V", NetflixRatings(spec, bs, 1));
    cases.push_back(std::move(c));
  }
  {
    GraphSpec spec = SocPokec().Scaled(scale);
    const int64_t bs = ChooseBlockSize({spec.nodes, spec.nodes}, 4, 2);
    LocalMatrix link = RowNormalizedLink(spec, bs, 2);
    const double sp = static_cast<double>(link.Nnz()) /
                      (static_cast<double>(spec.nodes) * spec.nodes);
    Case c{"PageRank", BuildPageRankProgram({spec.nodes, sp, 4, 0.85}), {}};
    c.inputs.emplace_back("link", std::move(link));
    c.inputs.emplace_back(
        "D", ConstantMatrix({1, spec.nodes}, bs,
                            1.0f / static_cast<Scalar>(spec.nodes)));
    cases.push_back(std::move(c));
  }
  {
    const int64_t n = 40000, d = 4000;
    const int64_t bs = ChooseBlockSize({n, d}, 4, 2);
    Case c{"LinReg", BuildLinearRegressionProgram({n, d, 1e-3, 4, 1e-6}), {}};
    c.inputs.emplace_back("V", SyntheticSparse(n, d, 1e-3, bs, 3));
    c.inputs.emplace_back("y", SyntheticDense(n, 1, bs, 4));
    cases.push_back(std::move(c));
  }
  {
    const int64_t n = 40000, d = 4000;
    const int64_t bs = ChooseBlockSize({n, d}, 4, 2);
    Case c{"LogReg",
           BuildLogisticRegressionProgram({n, d, 1e-3, 4, 1.0}), {}};
    c.inputs.emplace_back("V", SyntheticSparse(n, d, 1e-3, bs, 5));
    c.inputs.emplace_back("y", ConstantMatrix({n, 1}, bs, 1.0f));
    cases.push_back(std::move(c));
  }
  {
    NetflixSpec spec = NetflixSpec{}.Scaled(scale / 8);
    const int64_t bs = ChooseBlockSize({spec.movies, spec.users}, 4, 2);
    Case c{"CF",
           BuildCollabFilterProgram({spec.movies, spec.users,
                                     spec.sparsity}),
           {}};
    c.inputs.emplace_back("R", NetflixRatings(spec, bs, 6).Transposed());
    cases.push_back(std::move(c));
  }
  {
    NetflixSpec spec = NetflixSpec{}.Scaled(scale / 8);
    const int64_t bs = ChooseBlockSize({spec.users, spec.movies}, 4, 2);
    Case c{"SVD",
           BuildSvdLanczosProgram({spec.users, spec.movies, spec.sparsity,
                                   5}),
           {}};
    c.inputs.emplace_back("V", NetflixRatings(spec, bs, 7));
    cases.push_back(std::move(c));
  }

  for (Case& c : cases) {
    Bindings bindings;
    int64_t bs = 0;
    for (auto& [name, m] : c.inputs) {
      bindings.emplace(name, &m);
      bs = m.block_size();
    }
    for (bool exploit : {true, false}) {
      RunConfig config;
      config.block_size = bs;
      config.exploit_dependencies = exploit;
      auto run = RunProgram(c.program, bindings, config);
      if (!run.ok()) {
        std::fprintf(stderr, "%s: %s\n", c.name,
                     run.status().ToString().c_str());
        return 1;
      }
      const double estimated = run->plan.total_comm_bytes;
      const double measured = run->result.stats.comm_bytes();
      std::printf("%-10s | %-9s | %12s | %12s | %5.2fx\n", c.name,
                  exploit ? "DMac" : "SysML-S",
                  HumanBytes(estimated).c_str(), HumanBytes(measured).c_str(),
                  measured > 0 ? estimated / measured : 0.0);
    }
  }
  std::printf("\nEstimates use worst-case sparsity, so ratios >= ~1 are\n"
              "expected; large ratios flag loose worst-case bounds.\n");
  return 0;
}
