// Figure 8 — influence of block size (paper §6.3).
//
//   8(a): execution time vs block side m for the graph multiply
//   8(b): memory usage vs block side m
//
// Small blocks inflate memory (duplicated Column Start Index arrays, Eq. 2)
// and scheduling overhead; blocks beyond the Eq. 3 bound m ≤ sqrt(MN/LK)
// starve the local thread pools. The Eq. 3 threshold is printed per graph.
#include <cstdio>
#include <vector>

#include "apps/runner.h"
#include "bench_util.h"
#include "common/timer.h"
#include "data/graph_gen.h"
#include "runtime/block_size.h"

using namespace dmac;
using namespace dmac::bench;

int main() {
  ObsSession obs;
  const double scale = ScaleFactor(400);
  const int workers = 4;
  const int threads = 2;

  struct Graph {
    const char* name;
    GraphSpec spec;
  };
  const Graph graphs[] = {
      {"LiveJournal", LiveJournal().Scaled(scale)},
      {"soc-pokec", SocPokec().Scaled(scale)},
      {"cit-Patents", CitPatents().Scaled(scale)},
  };

  PrintHeader("Figure 8: influence of block size (A %*% A per graph)");

  for (const Graph& g : graphs) {
    const int64_t threshold =
        BlockSizeUpperBound({g.spec.nodes, g.spec.nodes}, workers, threads);
    std::printf("\n%s (%lld nodes, %lld edges), Eq.3 threshold m <= %lld\n",
                g.name, static_cast<long long>(g.spec.nodes),
                static_cast<long long>(g.spec.edges),
                static_cast<long long>(threshold));
    std::printf("%10s | %12s | %12s\n", "block m", "time (s)", "memory");
    std::printf("-----------+--------------+-------------\n");

    std::vector<int64_t> sweep;
    for (double f : {0.05, 0.125, 0.25, 0.5, 1.0, 2.0, 4.0}) {
      const int64_t m = static_cast<int64_t>(threshold * f);
      if (m >= 2 && m <= g.spec.nodes) sweep.push_back(m);
    }

    for (int64_t m : sweep) {
      LocalMatrix adj = AdjacencyMatrix(g.spec, m, 11);
      const double sparsity =
          static_cast<double>(adj.Nnz()) /
          (static_cast<double>(g.spec.nodes) * g.spec.nodes);
      ProgramBuilder pb;
      Mat a = pb.Load("A", adj.shape(), sparsity);
      Mat c = pb.Var("C");
      pb.Assign(c, a.mm(a));
      pb.Output(c);
      Program p = pb.Build();
      Bindings bindings{{"A", &adj}};
      RunConfig config;
      config.block_size = m;
      config.num_workers = workers;
      config.threads_per_worker = threads;
      auto run = RunProgram(p, bindings, config);
      if (!run.ok()) {
        std::fprintf(stderr, "%s m=%lld: %s\n", g.name,
                     static_cast<long long>(m),
                     run.status().ToString().c_str());
        return 1;
      }
      const double time = run->result.stats.SimulatedSeconds(PaperNetwork());
      const double mem =
          static_cast<double>(run->result.stats.peak_memory_bytes) / workers;
      std::printf("%10lld | %12.3f | %12s%s\n", static_cast<long long>(m),
                  time, HumanBytes(mem).c_str(),
                  m > threshold ? "   (beyond Eq.3 bound)" : "");
    }
  }
  std::printf("\nPaper shape: memory decreases with larger blocks; execution\n"
              "time degrades once m exceeds the Eq. 3 threshold.\n");
  return 0;
}
