// Ablation — dynamic task queue vs static task partitioning (paper §5.3,
// Fig. 4). On skewed workloads (power-law graph multiplication) the task
// costs vary by orders of magnitude between hub and tail blocks; the shared
// FIFO queue rebalances automatically while static per-thread chunks leave
// threads idle behind the hub chunk.
#include <cstdio>

#include "apps/runner.h"
#include "bench_util.h"
#include "data/graph_gen.h"
#include "data/synthetic.h"
#include "runtime/block_size.h"

using namespace dmac;
using namespace dmac::bench;

namespace {

double RunWith(const LocalMatrix& a, int64_t bs, TaskScheduling scheduling) {
  const double sparsity = static_cast<double>(a.Nnz()) /
                          (static_cast<double>(a.rows()) * a.cols());
  ProgramBuilder pb;
  Mat m = pb.Load("A", a.shape(), sparsity);
  Mat c = pb.Var("C");
  pb.Assign(c, m.mm(m));
  pb.Output(c);
  Program p = pb.Build();
  Bindings bindings{{"A", &a}};
  RunConfig config;
  config.block_size = bs;
  // One worker, several threads: intra-worker scheduling is what's being
  // measured (cross-worker placement is fixed by the partition scheme).
  config.num_workers = 1;
  config.threads_per_worker = 2;
  config.task_scheduling = scheduling;
  auto run = RunProgram(p, bindings, config);
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return -1;
  }
  return run->result.stats.ComputeWallSeconds();
}

}  // namespace

int main() {
  ObsSession obs;
  const double scale = ScaleFactor(200);

  PrintHeader("Ablation: dynamic task queue vs static task partitioning");
  std::printf("%-22s | %10s | %10s | %7s\n", "workload", "queue (s)",
              "static (s)", "ratio");
  std::printf("-----------------------+------------+------------+--------\n");

  {
    // Skewed: power-law graph — hub block rows cost far more than tail,
    // and they cluster at the front of the task list.
    GraphSpec spec = LiveJournal().Scaled(scale);
    spec.skew = 2.8;
    const int64_t bs =
        BlockSizeUpperBound({spec.nodes, spec.nodes}, 4, 2) / 8;
    LocalMatrix adj = AdjacencyMatrix(spec, bs, 7);
    const double queue = RunWith(adj, bs, TaskScheduling::kQueue);
    const double fixed = RunWith(adj, bs, TaskScheduling::kStatic);
    if (queue < 0 || fixed < 0) return 1;
    std::printf("%-22s | %10.3f | %10.3f | %6.2fx\n",
                "power-law graph (skew)", queue, fixed, fixed / queue);
  }
  {
    // Uniform: same nnz spread evenly — both schedulers should tie.
    GraphSpec spec = LiveJournal().Scaled(scale);
    const int64_t bs =
        BlockSizeUpperBound({spec.nodes, spec.nodes}, 4, 2) / 8;
    const double sparsity =
        static_cast<double>(spec.edges) /
        (static_cast<double>(spec.nodes) * spec.nodes);
    LocalMatrix uniform =
        SyntheticSparse(spec.nodes, spec.nodes, sparsity, bs, 9);
    const double queue = RunWith(uniform, bs, TaskScheduling::kQueue);
    const double fixed = RunWith(uniform, bs, TaskScheduling::kStatic);
    if (queue < 0 || fixed < 0) return 1;
    std::printf("%-22s | %10.3f | %10.3f | %6.2fx\n",
                "uniform sparse", queue, fixed, fixed / queue);
  }
  std::printf("\nThe Fig. 4 task queue wins under skew and ties on uniform\n"
              "work — the reason DMac dispatches per result block.\n");
  return 0;
}
