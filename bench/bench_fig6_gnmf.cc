// Figure 6 — GNMF on the Netflix-shaped dataset (paper §6.2).
//
//   6(a): accumulated execution time per iteration count
//         (DMac, SystemML-S, R = single-machine interpreter)
//   6(b): accumulated communication per iteration count
//   §6.2 text: communication share of runtime (~44% SystemML-S, ~6% DMac)
//
// Workload: V with Netflix dimensions/sparsity (scaled by DMAC_BENCH_SCALE,
// default 1/16 in each dimension), factor size proportional to the paper's
// 200.
#include <cstdio>
#include <vector>

#include "apps/gnmf.h"
#include "apps/local_interpreter.h"
#include "apps/runner.h"
#include "bench_util.h"
#include "data/netflix_gen.h"
#include "runtime/block_size.h"

using namespace dmac;
using namespace dmac::bench;

int main() {
  ObsSession obs;
  const double scale = ScaleFactor(16);
  NetflixSpec spec = NetflixSpec{}.Scaled(scale);
  const int64_t factors = std::max<int64_t>(8, static_cast<int64_t>(200 / scale) * 4);
  const int max_iterations = 10;

  const int64_t bs =
      ChooseBlockSize({spec.users, spec.movies}, 4, 2);
  PrintHeader("Figure 6: GNMF on Netflix-shaped data  (V " +
              std::to_string(spec.users) + "x" + std::to_string(spec.movies) +
              ", sparsity " + std::to_string(spec.sparsity) + ", k=" +
              std::to_string(factors) + ", block " + std::to_string(bs) + ")");

  LocalMatrix v = NetflixRatings(spec, bs, 42);
  Bindings bindings{{"V", &v}};
  const NetworkModel net = PaperNetwork();

  std::printf("%-5s | %-28s | %-28s | %-10s\n", "iter",
              "DMac  time(s)  comm", "SysML-S time(s)  comm", "R time(s)");
  std::printf("------+------------------------------+------------------------------+----------\n");

  double comm_share_dmac = 0, comm_share_sysml = 0;
  for (int iters = 1; iters <= max_iterations; ++iters) {
    GnmfConfig config{spec.users, spec.movies, spec.sparsity, factors, iters};
    Program p = BuildGnmfProgram(config);

    RunConfig dmac_cfg;
    dmac_cfg.block_size = bs;
    auto dmac_run = RunProgram(p, bindings, dmac_cfg);
    if (!dmac_run.ok()) {
      std::fprintf(stderr, "DMac: %s\n", dmac_run.status().ToString().c_str());
      return 1;
    }
    RunConfig sysml_cfg = dmac_cfg;
    sysml_cfg.exploit_dependencies = false;
    auto sysml_run = RunProgram(p, bindings, sysml_cfg);
    if (!sysml_run.ok()) {
      std::fprintf(stderr, "SysML: %s\n",
                   sysml_run.status().ToString().c_str());
      return 1;
    }
    auto r_run = InterpretLocally(p, bindings, bs, dmac_cfg.seed);
    if (!r_run.ok()) {
      std::fprintf(stderr, "R: %s\n", r_run.status().ToString().c_str());
      return 1;
    }

    const ExecStats& ds = dmac_run->result.stats;
    const ExecStats& ss = sysml_run->result.stats;
    std::printf("%-5d | %7.2f  %19s | %7.2f  %19s | %8.2f\n", iters,
                ds.SimulatedSeconds(net), HumanBytes(ds.comm_bytes()).c_str(),
                ss.SimulatedSeconds(net), HumanBytes(ss.comm_bytes()).c_str(),
                r_run->seconds);
    if (iters == max_iterations) {
      // Bytes-only transfer share: at this reduced scale, fixed per-event
      // latency would otherwise dominate both systems and mask the
      // byte-volume effect the paper reports.
      const double d_comm = ds.comm_bytes() / net.bandwidth_bytes_per_sec;
      const double s_comm = ss.comm_bytes() / net.bandwidth_bytes_per_sec;
      comm_share_dmac = d_comm / (ds.ComputeWallSeconds() + d_comm);
      comm_share_sysml = s_comm / (ss.ComputeWallSeconds() + s_comm);
    }
  }

  std::printf("\nCommunication (transfer) share of runtime after %d "
              "iterations:\n", max_iterations);
  std::printf("  DMac:       %4.1f%%  (paper: ~6%%)\n", 100 * comm_share_dmac);
  std::printf("  SystemML-S: %4.1f%%  (paper: ~44%%)\n",
              100 * comm_share_sysml);
  return 0;
}
