// Kernel benchmark: GFLOP/s and bytes/s for every multiply kernel over
// (representation, transpose-flags, block-size), a thread-count axis for
// the parallel dense macro-kernel (GemmParallel over a shared ThreadPool),
// plus the vectorized reduction/elementwise primitives, plus the seed's
// pre-packing dense GEMM loop as the speedup baseline
// (tests/matrix/kernel_reference.h keeps the same loop as the
// differential-test reference).
//
// Emits BENCH_kernels.json (override with --out=PATH) with one entry per
// measured configuration and two summaries at the default block size:
// `dense_gemm_speedup_vs_seed` (packed vs seed loop, the packed-layer
// acceptance number) and `dense_gemm_parallel_speedup_4t` (4-thread vs
// 1-thread packed — honest on the runner, so ~1.0 on a 1-core machine).
// `--quick` or DMAC_BENCH_SCALE>1 trims the size sweep for CI smoke runs.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "matrix/block.h"
#include "matrix/block_ops.h"
#include "matrix/kernels.h"
#include "matrix/unary_fn.h"

namespace dmac {
namespace bench {
namespace {

/// The block side the summary speedup is quoted at: the mid-point of the
/// sweep and the side ChooseProgramBlockSize lands on for the paper-scale
/// inputs once governed budgets are in play.
constexpr int64_t kDefaultBs = 256;

constexpr double kSparsity = 0.02;

struct Entry {
  std::string kind;            // "gemm" | "gemm_seed_reference" | "vec"
  std::string representation;  // e.g. "dense_dense", "sum_squares"
  std::string trans;           // "nn" | "tn" | "nt" | "tt" | "" for vec
  int64_t block_size = 0;
  int threads = 1;             // workers incl. the caller (GemmParallel)
  double seconds = 0;          // per call
  double gflops = 0;
  double bytes_per_second = 0;
};

double GflopsOrZero(double flops, double seconds) {
  return seconds > 0 ? flops / seconds / 1e9 : 0;
}

/// Times `fn` (one kernel call) adaptively: repeat until the total wall
/// time crosses a floor so fast configs are not quantization noise, and
/// report the mean per-call seconds.
template <typename Fn>
double TimeCall(Fn&& fn, double min_seconds) {
  // Warm-up call: faults the operands in and grows the packing scratch so
  // the measured calls see a steady state.
  fn();
  int calls = 0;
  Timer timer;
  do {
    fn();
    ++calls;
  } while (timer.ElapsedSeconds() < min_seconds && calls < 1000);
  return timer.ElapsedSeconds() / calls;
}

int64_t BlockBytes(const Block& b) {
  if (b.IsDense()) return b.rows() * b.cols() * sizeof(Scalar);
  return b.sparse().nnz() * (sizeof(Scalar) + sizeof(int32_t)) +
         (b.cols() + 1) * sizeof(int32_t);
}

/// A stored operand for op(X) of effective shape rows×cols: stored
/// transposed when the flag is set so every flag combination multiplies
/// the same effective matrices.
Block MakeOperand(int64_t rows, int64_t cols, bool trans, bool sparse,
                  uint64_t seed) {
  const int64_t r = trans ? cols : rows;
  const int64_t c = trans ? rows : cols;
  return sparse ? RandomSparseBlock(r, c, kSparsity, seed)
                : RandomDenseBlock(r, c, seed);
}

/// `threads` > 1 routes the dense macro-kernel through GemmParallel over
/// `pool` (which needs at least threads-1 workers); the serial small-product
/// cutoff still applies, so tiny blocks report flat scaling by design.
Entry BenchGemm(bool a_sparse, bool b_sparse, bool ta, bool tb, int64_t bs,
                double min_seconds, int threads = 1,
                ThreadPool* pool = nullptr) {
  Block a = MakeOperand(bs, bs, ta, a_sparse, 1);
  Block b = MakeOperand(bs, bs, tb, b_sparse, 2);
  DenseBlock acc(bs, bs);
  GemmScratch scratch;  // reused across calls, as the engine reuses its pool

  GemmParallel par;
  const GemmParallel* parp = nullptr;
  if (threads > 1 && pool != nullptr) {
    par.pool = pool;
    par.max_workers = threads;
    parp = &par;
  }

  GemmStats stats;
  Status st = MultiplyAccumulate(a, b, ta, tb, &acc, &scratch, &stats, parp);
  DMAC_CHECK(st.ok()) << st.ToString();
  const double flops_per_call = static_cast<double>(stats.flops);

  const double seconds = TimeCall(
      [&] {
        GemmStats s;
        Status call =
            MultiplyAccumulate(a, b, ta, tb, &acc, &scratch, &s, parp);
        DMAC_CHECK(call.ok()) << call.ToString();
      },
      min_seconds);

  Entry e;
  e.kind = "gemm";
  e.representation = std::string(a_sparse ? "sparse" : "dense") + "_" +
                     (b_sparse ? "sparse" : "dense");
  e.trans = std::string(ta ? "t" : "n") + (tb ? "t" : "n");
  e.block_size = bs;
  e.threads = threads;
  e.seconds = seconds;
  e.gflops = GflopsOrZero(flops_per_call, seconds);
  const double bytes =
      BlockBytes(a) + BlockBytes(b) + 2.0 * bs * bs * sizeof(Scalar);
  e.bytes_per_second = bytes / seconds;
  return e;
}

/// The seed's dense GEMM loop, verbatim (tests/matrix/kernel_reference.h):
/// column-major jli ordering, contiguous axpy over A's column, per-element
/// zero test on B. This is the baseline the packed kernel is measured
/// against.
void SeedGemmDenseDense(const DenseBlock& a, const DenseBlock& b,
                        DenseBlock* acc) {
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  for (int64_t j = 0; j < n; ++j) {
    Scalar* c_col = acc->col(j);
    const Scalar* b_col = b.col(j);
    for (int64_t l = 0; l < k; ++l) {
      const Scalar t = b_col[l];
      if (t == Scalar{0}) continue;
      const Scalar* a_col = a.col(l);
      for (int64_t i = 0; i < m; ++i) c_col[i] += a_col[i] * t;
    }
  }
}

Entry BenchSeedGemm(int64_t bs, double min_seconds) {
  Block a = RandomDenseBlock(bs, bs, 1);
  Block b = RandomDenseBlock(bs, bs, 2);
  DenseBlock acc(bs, bs);
  const double seconds = TimeCall(
      [&] { SeedGemmDenseDense(a.dense(), b.dense(), &acc); }, min_seconds);
  Entry e;
  e.kind = "gemm_seed_reference";
  e.representation = "dense_dense";
  e.trans = "nn";
  e.block_size = bs;
  e.seconds = seconds;
  e.gflops = GflopsOrZero(2.0 * bs * bs * bs, seconds);
  e.bytes_per_second = 4.0 * bs * bs * sizeof(Scalar) / seconds;
  return e;
}

std::vector<Entry> BenchVecPrimitives(int64_t bs, double min_seconds) {
  Block dense = RandomDenseBlock(bs, bs, 3);
  DenseBlock acc(bs, bs);
  const double block_bytes = static_cast<double>(bs) * bs * sizeof(Scalar);

  struct VecCase {
    const char* name;
    double bytes;   // streamed per call
    double flops;   // per call
    std::function<void()> run;
  };
  const VecCase cases[] = {
      {"add_accumulate", 3 * block_bytes, 1.0 * bs * bs,
       [&] { DMAC_CHECK(AddAccumulate(dense, &acc).ok()); }},
      {"cell_unary_abs", 2 * block_bytes, 1.0 * bs * bs,
       [&] {
         Block r = CellUnary(dense, UnaryFnKind::kAbs);
         DMAC_CHECK(r.rows() == bs);
       }},
      {"sum", block_bytes, 1.0 * bs * bs,
       [&] { volatile double s = Sum(dense); (void)s; }},
      {"sum_squares", block_bytes, 2.0 * bs * bs,
       [&] { volatile double s = SumSquares(dense); (void)s; }},
      {"row_sums", block_bytes, 1.0 * bs * bs,
       [&] {
         DenseBlock r = RowSums(dense);
         DMAC_CHECK(r.rows() == bs);
       }},
      {"col_sums", block_bytes, 1.0 * bs * bs,
       [&] {
         DenseBlock r = ColSums(dense);
         DMAC_CHECK(r.cols() == bs);
       }},
  };

  std::vector<Entry> out;
  for (const VecCase& c : cases) {
    const double seconds = TimeCall(c.run, min_seconds);
    Entry e;
    e.kind = "vec";
    e.representation = c.name;
    e.block_size = bs;
    e.seconds = seconds;
    e.gflops = GflopsOrZero(c.flops, seconds);
    e.bytes_per_second = c.bytes / seconds;
    out.push_back(e);
  }
  return out;
}

void AppendJson(std::string* out, const Entry& e) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "    {\"kind\": \"%s\", \"representation\": \"%s\", "
                "\"trans\": \"%s\", \"block_size\": %lld, \"threads\": %d, "
                "\"seconds_per_call\": %.9f, \"gflops\": %.3f, "
                "\"bytes_per_second\": %.3e}",
                e.kind.c_str(), e.representation.c_str(), e.trans.c_str(),
                static_cast<long long>(e.block_size), e.threads, e.seconds,
                e.gflops, e.bytes_per_second);
  *out += buf;
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_kernels.json";
  bool quick = ScaleFactor(1.0) > 1.0;  // CI smoke sets DMAC_BENCH_SCALE=8
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out=PATH]\n", argv[0]);
      return 2;
    }
  }

  const double min_seconds = quick ? 0.01 : 0.1;
  std::vector<int64_t> sizes = {64, kDefaultBs, 1024};
  if (quick) sizes = {64, kDefaultBs};

  PrintHeader("Kernel benchmark (docs/kernels.md)");
  std::printf("%-20s %-14s %-6s %6s %4s | %10s %12s\n", "kind",
              "representation", "trans", "bs", "thr", "GFLOP/s", "GB/s");

  std::vector<Entry> entries;
  auto emit = [&](const Entry& e) {
    entries.push_back(e);
    std::printf("%-20s %-14s %-6s %6lld %4d | %10.2f %12.2f\n", e.kind.c_str(),
                e.representation.c_str(), e.trans.c_str(),
                static_cast<long long>(e.block_size), e.threads, e.gflops,
                e.bytes_per_second / 1e9);
  };

  for (int64_t bs : sizes) {
    emit(BenchSeedGemm(bs, min_seconds));
    for (bool a_sparse : {false, true}) {
      for (bool b_sparse : {false, true}) {
        for (bool ta : {false, true}) {
          for (bool tb : {false, true}) {
            emit(BenchGemm(a_sparse, b_sparse, ta, tb, bs, min_seconds));
          }
        }
      }
    }
    for (const Entry& e : BenchVecPrimitives(bs, min_seconds)) emit(e);
  }

  // Thread-count axis for the one kernel that fans out — dense×dense nn at
  // the block sizes above the serial cutoff (docs/performance.md explains
  // how to read the scaling column against the machine's core count).
  {
    const int kMaxThreads = 4;
    ThreadPool pool(kMaxThreads - 1);
    for (int64_t bs : sizes) {
      if (bs < kDefaultBs) continue;  // below the parallel flop cutoff
      for (int threads : {2, kMaxThreads}) {
        emit(BenchGemm(false, false, false, false, bs, min_seconds, threads,
                       &pool));
      }
    }
  }

  // Acceptance summaries: packed dense GEMM vs the seed loop, and the
  // 4-thread parallel speedup over the 1-thread packed kernel, both at the
  // default block size. The scaling number is machine-honest — a 1-core
  // runner reports ~1.0x.
  double seed_gflops = 0, packed_gflops = 0, packed_gflops_4t = 0;
  for (const Entry& e : entries) {
    if (e.block_size != kDefaultBs || e.representation != "dense_dense" ||
        e.trans != "nn") {
      continue;
    }
    if (e.kind == "gemm_seed_reference") seed_gflops = e.gflops;
    if (e.kind == "gemm" && e.threads == 1) packed_gflops = e.gflops;
    if (e.kind == "gemm" && e.threads == 4) packed_gflops_4t = e.gflops;
  }
  const double speedup = seed_gflops > 0 ? packed_gflops / seed_gflops : 0;
  const double par_speedup =
      packed_gflops > 0 ? packed_gflops_4t / packed_gflops : 0;
  std::printf("\ndense GEMM @ bs=%lld: packed %.2f GFLOP/s vs seed %.2f "
              "GFLOP/s -> %.2fx; 4 threads %.2f GFLOP/s -> %.2fx scaling\n",
              static_cast<long long>(kDefaultBs), packed_gflops, seed_gflops,
              speedup, packed_gflops_4t, par_speedup);

  std::string json = "{\n";
  json += "  \"schema\": \"dmac-kernel-bench-v2\",\n";
  json += "  \"default_block_size\": " + std::to_string(kDefaultBs) + ",\n";
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "  \"dense_gemm_speedup_vs_seed\": %.3f,\n", speedup);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"dense_gemm_parallel_speedup_4t\": %.3f,\n", par_speedup);
  json += buf;
  json += "  \"entries\": [\n";
  for (size_t i = 0; i < entries.size(); ++i) {
    AppendJson(&json, entries[i]);
    json += (i + 1 < entries.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s (%zu entries)\n", out_path.c_str(), entries.size());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dmac

int main(int argc, char** argv) { return dmac::bench::Main(argc, argv); }
