// Figure 9 — performance on various matrix applications (paper §6.4).
//
//   9(a): PageRank per-iteration time on the four Table-3 graphs,
//         DMac vs SystemML-S
//   9(b): Linear Regression, Collaborative Filtering, SVD — execution time
//         normalized to DMac (paper: LR >7x, SVD ~3.3x, CF ~1.7x)
#include <cstdio>

#include "apps/collab_filter.h"
#include "apps/linear_regression.h"
#include "apps/pagerank.h"
#include "apps/runner.h"
#include "apps/svd_lanczos.h"
#include "bench_util.h"
#include "data/graph_gen.h"
#include "data/netflix_gen.h"
#include "data/synthetic.h"
#include "runtime/block_size.h"

using namespace dmac;
using namespace dmac::bench;

namespace {

struct Pair {
  double dmac_seconds = -1;
  double sysml_seconds = -1;
};

Pair RunBoth(const Program& p, const Bindings& bindings, int64_t bs) {
  Pair out;
  RunConfig dmac_cfg;
  dmac_cfg.block_size = bs;
  auto r1 = RunProgram(p, bindings, dmac_cfg);
  RunConfig sysml_cfg = dmac_cfg;
  sysml_cfg.exploit_dependencies = false;
  auto r2 = RunProgram(p, bindings, sysml_cfg);
  if (!r1.ok() || !r2.ok()) {
    std::fprintf(stderr, "run failed: %s / %s\n",
                 r1.ok() ? "ok" : r1.status().ToString().c_str(),
                 r2.ok() ? "ok" : r2.status().ToString().c_str());
    return out;
  }
  out.dmac_seconds = r1->result.stats.SimulatedSeconds(PaperNetwork());
  out.sysml_seconds = r2->result.stats.SimulatedSeconds(PaperNetwork());
  return out;
}

}  // namespace

int main() {
  ObsSession obs;
  const double scale = ScaleFactor(300);
  const int iterations = 5;

  // ---- 9(a): PageRank --------------------------------------------------
  PrintHeader("Figure 9(a): PageRank per-iteration time (s)");
  std::printf("%-12s | %10s | %12s | %7s\n", "graph", "DMac", "SystemML-S",
              "speedup");
  std::printf("-------------+------------+--------------+--------\n");

  struct Graph {
    const char* name;
    GraphSpec spec;
  };
  const Graph graphs[] = {
      {"soc-pokec", SocPokec().Scaled(scale)},
      {"cit-Patents", CitPatents().Scaled(scale)},
      {"LiveJournal", LiveJournal().Scaled(scale)},
      {"Wikipedia", Wikipedia().Scaled(scale * 8)},
  };
  for (const Graph& g : graphs) {
    const int64_t bs = ChooseBlockSize({g.spec.nodes, g.spec.nodes}, 4, 2);
    LocalMatrix link = RowNormalizedLink(g.spec, bs, 17);
    LocalMatrix d = ConstantMatrix({1, g.spec.nodes}, bs,
                                   1.0f / static_cast<Scalar>(g.spec.nodes));
    const double link_sparsity =
        static_cast<double>(link.Nnz()) /
        (static_cast<double>(g.spec.nodes) * g.spec.nodes);
    PageRankConfig config{g.spec.nodes, link_sparsity, iterations, 0.85};
    Bindings bindings{{"link", &link}, {"D", &d}};
    Pair pair = RunBoth(BuildPageRankProgram(config), bindings, bs);
    if (pair.dmac_seconds < 0) return 1;
    std::printf("%-12s | %10.3f | %12.3f | %6.2fx\n", g.name,
                pair.dmac_seconds / iterations,
                pair.sysml_seconds / iterations,
                pair.sysml_seconds / pair.dmac_seconds);
  }

  // ---- 9(b): LR / CF / SVD ----------------------------------------------
  PrintHeader("Figure 9(b): LR / CF / SVD, time normalized to DMac");
  std::printf("%-5s | %10s | %12s | %16s\n", "app", "DMac(s)", "SysML-S(s)",
              "normalized ratio");
  std::printf("------+------------+--------------+-----------------\n");

  {
    // Linear regression: the paper's synthetic 1e8 x 1e5 V, scaled.
    const int64_t examples = static_cast<int64_t>(1e8 / (scale * 20));
    const int64_t features = static_cast<int64_t>(1e5 / 10);
    const double sparsity = 1e-4 * 10;  // keep nnz/row constant
    const int64_t bs = ChooseBlockSize({examples, features}, 4, 2);
    LocalMatrix v = SyntheticSparse(examples, features, sparsity, bs, 5);
    LocalMatrix y = SyntheticDense(examples, 1, bs, 6);
    LinRegConfig config{examples, features, sparsity, iterations, 1e-6};
    Bindings bindings{{"V", &v}, {"y", &y}};
    Pair pair = RunBoth(BuildLinearRegressionProgram(config), bindings, bs);
    if (pair.dmac_seconds < 0) return 1;
    std::printf("%-5s | %10.3f | %12.3f | %13.2fx  (paper >7x)\n", "LR",
                pair.dmac_seconds, pair.sysml_seconds,
                pair.sysml_seconds / pair.dmac_seconds);
  }
  {
    // Collaborative filtering on Netflix-shaped R (items x users).
    NetflixSpec spec = NetflixSpec{}.Scaled(scale / 12);
    const int64_t bs = ChooseBlockSize({spec.movies, spec.users}, 4, 2);
    LocalMatrix r = NetflixRatings(spec, bs, 7).Transposed();
    CollabFilterConfig config{spec.movies, spec.users, spec.sparsity};
    Bindings bindings{{"R", &r}};
    Pair pair = RunBoth(BuildCollabFilterProgram(config), bindings, bs);
    if (pair.dmac_seconds < 0) return 1;
    std::printf("%-5s | %10.3f | %12.3f | %13.2fx  (paper ~1.7x)\n", "CF",
                pair.dmac_seconds, pair.sysml_seconds,
                pair.sysml_seconds / pair.dmac_seconds);
  }
  {
    // SVD (Lanczos) on the same Netflix-shaped matrix.
    NetflixSpec spec = NetflixSpec{}.Scaled(scale / 12);
    const int64_t bs = ChooseBlockSize({spec.users, spec.movies}, 4, 2);
    LocalMatrix v = NetflixRatings(spec, bs, 8);
    SvdConfig config{spec.users, spec.movies, spec.sparsity, 8};
    Bindings bindings{{"V", &v}};
    Pair pair = RunBoth(BuildSvdLanczosProgram(config), bindings, bs);
    if (pair.dmac_seconds < 0) return 1;
    std::printf("%-5s | %10.3f | %12.3f | %13.2fx  (paper ~3.3x)\n", "SVD",
                pair.dmac_seconds, pair.sysml_seconds,
                pair.sysml_seconds / pair.dmac_seconds);
  }
  return 0;
}
