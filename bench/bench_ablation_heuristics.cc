// Ablation — contribution of the planner's two heuristics (§4.2.2).
//
// Plans GNMF, PageRank, and LinReg with every combination of Pull-Up
// Broadcast (H1) and Re-assignment (H2), reporting cost-model communication.
#include <cstdio>

#include "apps/gnmf.h"
#include "apps/linear_regression.h"
#include "apps/pagerank.h"
#include "apps/runner.h"
#include "bench_util.h"

using namespace dmac;
using namespace dmac::bench;

int main() {
  ObsSession obs;
  PrintHeader("Ablation: planner heuristics (plan-time communication)");

  struct Case {
    const char* name;
    Program program;
  };
  Case cases[] = {
      {"GNMF", BuildGnmfProgram({480189, 17770, 0.011, 200, 10})},
      {"PageRank", BuildPageRankProgram({4847571, 2.9e-6, 10, 0.85})},
      {"LinReg", BuildLinearRegressionProgram({100000000, 100000, 1e-7, 10,
                                               1e-6})},
  };

  std::printf("%-9s | %14s | %14s | %14s | %14s\n", "program", "H1+H2",
              "H1 only", "H2 only", "neither");
  std::printf("----------+----------------+----------------+----------------+---------------\n");

  for (Case& c : cases) {
    double comm[4];
    int i = 0;
    for (bool h1 : {true, false}) {
      for (bool h2 : {true, false}) {
        RunConfig config;
        config.pull_up_broadcast = h1;
        config.reassignment = h2;
        auto plan = PlanProgram(c.program, config);
        if (!plan.ok()) {
          std::fprintf(stderr, "%s: %s\n", c.name,
                       plan.status().ToString().c_str());
          return 1;
        }
        comm[i++] = plan->total_comm_bytes;
      }
    }
    // Order produced above: (h1,h2), (h1,!h2), (!h1,h2), (!h1,!h2).
    std::printf("%-9s | %14s | %14s | %14s | %14s\n", c.name,
                HumanBytes(comm[0]).c_str(), HumanBytes(comm[1]).c_str(),
                HumanBytes(comm[2]).c_str(), HumanBytes(comm[3]).c_str());
  }
  std::printf("\nBoth heuristics only ever reduce the plan's communication.\n");
  return 0;
}
