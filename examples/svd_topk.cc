// Top-k singular values of a Netflix-shaped matrix via distributed Lanczos
// (paper Code 5): the cluster runs the bidiagonalization; the driver solves
// the small tridiagonal eigenproblem.
//
//   ./svd_topk [rank] [scale]
#include <cstdio>
#include <cstdlib>

#include "apps/runner.h"
#include "apps/svd_lanczos.h"
#include "data/netflix_gen.h"
#include "runtime/block_size.h"

using namespace dmac;

int main(int argc, char** argv) {
  const int rank = argc > 1 ? std::atoi(argv[1]) : 12;
  const double scale = argc > 2 ? std::atof(argv[2]) : 40.0;
  NetflixSpec spec = NetflixSpec{}.Scaled(scale);

  std::printf("Lanczos SVD: V %lld x %lld (sparsity %.3f%%), %d steps\n",
              static_cast<long long>(spec.users),
              static_cast<long long>(spec.movies), 100 * spec.sparsity,
              rank);

  const int64_t bs = ChooseBlockSize({spec.users, spec.movies}, 4, 2);
  LocalMatrix v = NetflixRatings(spec, bs, 42);
  SvdConfig config{spec.users, spec.movies, spec.sparsity, rank};
  Bindings bindings{{"V", &v}};

  RunConfig run;
  run.block_size = bs;
  auto outcome = RunProgram(BuildSvdLanczosProgram(config), bindings, run);
  if (!outcome.ok()) {
    std::fprintf(stderr, "error: %s\n", outcome.status().ToString().c_str());
    return 1;
  }
  auto singular = SingularValuesFromScalars(config, outcome->result.scalars);
  if (!singular.ok()) {
    std::fprintf(stderr, "error: %s\n", singular.status().ToString().c_str());
    return 1;
  }

  std::printf("top singular values:\n");
  const size_t show = std::min<size_t>(8, singular->size());
  for (size_t i = 0; i < show; ++i) {
    std::printf("  sigma_%zu = %.4f\n", i + 1, (*singular)[i]);
  }
  std::printf("communication: %.2f MB across %d stages\n",
              outcome->result.stats.comm_bytes() / 1e6,
              outcome->plan.num_stages);
  return 0;
}
