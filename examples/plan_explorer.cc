// Plan explorer: prints the execution plans DMac and the SystemML-S
// baseline generate for each of the paper's five applications — the
// textual analogue of the paper's Fig. 3 (GNMF plan with its stages).
//
//   ./plan_explorer [gnmf|pagerank|linreg|cf|svd] [--baseline] [--dot]
//
// With --dot, emits Graphviz (pipe through `dot -Tsvg` for a Fig.-3-style
// picture of the plan).
#include <cstdio>
#include <cstring>
#include <string>

#include "apps/collab_filter.h"
#include "apps/gnmf.h"
#include "apps/linear_regression.h"
#include "apps/pagerank.h"
#include "apps/runner.h"
#include "apps/svd_lanczos.h"
#include "plan/plan_dot.h"

using namespace dmac;

int main(int argc, char** argv) {
  std::string app = argc > 1 ? argv[1] : "gnmf";
  bool baseline = false;
  bool dot = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--baseline") == 0) baseline = true;
    if (std::strcmp(argv[i], "--dot") == 0) dot = true;
  }

  Program program;
  if (app == "gnmf") {
    // One iteration at Netflix scale: compare with the paper's Fig. 3.
    program = BuildGnmfProgram({480189, 17770, 0.011, 200, 1});
  } else if (app == "pagerank") {
    program = BuildPageRankProgram({4847571, 2.9e-6, 2, 0.85});
  } else if (app == "linreg") {
    program = BuildLinearRegressionProgram({100000000, 100000, 1e-7, 2,
                                            1e-6});
  } else if (app == "cf") {
    program = BuildCollabFilterProgram({17770, 480189, 0.011});
  } else if (app == "svd") {
    program = BuildSvdLanczosProgram({480189, 17770, 0.011, 2});
  } else {
    std::fprintf(stderr,
                 "usage: %s [gnmf|pagerank|linreg|cf|svd] [--baseline]\n",
                 argv[0]);
    return 2;
  }

  RunConfig config;
  config.exploit_dependencies = !baseline;
  auto plan = PlanProgram(program, config);
  if (!plan.ok()) {
    std::fprintf(stderr, "error: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  if (dot) {
    std::printf("%s", PlanToDot(*plan).c_str());
    return 0;
  }
  std::printf("=== %s plan for %s ===\n%s",
              baseline ? "SystemML-S" : "DMac", app.c_str(),
              plan->ToString().c_str());
  std::printf("\nplan-time communication estimate: %.2f MB across %d "
              "stages\n", plan->total_comm_bytes / 1e6, plan->num_stages);
  return 0;
}
