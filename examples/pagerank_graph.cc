// PageRank over a power-law web graph (paper Code 2): shows how the planner
// caches the link matrix under its Column scheme so each iteration only
// broadcasts the small rank vector.
//
//   ./pagerank_graph [scale]   (default scale 500: soc-pokec/500)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "apps/pagerank.h"
#include "apps/runner.h"
#include "data/graph_gen.h"
#include "data/synthetic.h"
#include "runtime/block_size.h"

using namespace dmac;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 500.0;
  GraphSpec spec = SocPokec().Scaled(scale);
  const int iterations = 10;

  std::printf("PageRank: %lld nodes, %lld edges, %d iterations\n",
              static_cast<long long>(spec.nodes),
              static_cast<long long>(spec.edges), iterations);

  const int64_t bs = ChooseBlockSize({spec.nodes, spec.nodes}, 4, 2);
  LocalMatrix link = RowNormalizedLink(spec, bs, 17);
  LocalMatrix d = ConstantMatrix({1, spec.nodes}, bs,
                                 1.0f / static_cast<Scalar>(spec.nodes));
  const double link_sparsity =
      static_cast<double>(link.Nnz()) /
      (static_cast<double>(spec.nodes) * spec.nodes);
  PageRankConfig config{spec.nodes, link_sparsity, iterations, 0.85};
  Bindings bindings{{"link", &link}, {"D", &d}};

  RunConfig run;
  run.block_size = bs;
  auto outcome = RunProgram(BuildPageRankProgram(config), bindings, run);
  if (!outcome.ok()) {
    std::fprintf(stderr, "error: %s\n", outcome.status().ToString().c_str());
    return 1;
  }

  const LocalMatrix& rank = outcome->result.matrices.at("rank");
  std::vector<std::pair<Scalar, int64_t>> top;
  for (int64_t c = 0; c < rank.cols(); ++c) top.push_back({rank.At(0, c), c});
  std::partial_sort(top.begin(), top.begin() + std::min<size_t>(5, top.size()),
                    top.end(), std::greater<>());
  std::printf("top-5 nodes by rank:\n");
  for (size_t i = 0; i < std::min<size_t>(5, top.size()); ++i) {
    std::printf("  node %6lld  rank %.6f\n",
                static_cast<long long>(top[i].second), top[i].first);
  }
  std::printf("communication: %.2f MB total — the link matrix (%.2f MB) was "
              "moved once,\nthen only the rank vector travelled each "
              "iteration.\n",
              outcome->result.stats.comm_bytes() / 1e6,
              static_cast<double>(link.MemoryBytes()) / 1e6);
  return 0;
}
