// GNMF on a Netflix-shaped rating matrix (the paper's headline workload,
// Code 1): factor V ≈ W·H and report reconstruction quality plus the
// communication DMac saved over the dependency-oblivious baseline.
//
//   ./gnmf_netflix [scale]   (default scale 24: Netflix/24 per dimension)
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "apps/gnmf.h"
#include "apps/runner.h"
#include "data/netflix_gen.h"
#include "runtime/block_size.h"

using namespace dmac;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 24.0;
  NetflixSpec spec = NetflixSpec{}.Scaled(scale);
  const int64_t factors = 16;
  const int iterations = 5;

  std::printf("GNMF: V %lld x %lld (sparsity %.3f%%), k=%lld, %d iterations\n",
              static_cast<long long>(spec.users),
              static_cast<long long>(spec.movies), 100 * spec.sparsity,
              static_cast<long long>(factors), iterations);

  const int64_t bs = ChooseBlockSize({spec.users, spec.movies}, 4, 2);
  LocalMatrix v = NetflixRatings(spec, bs, 42);
  Bindings bindings{{"V", &v}};

  GnmfConfig config{spec.users, spec.movies, spec.sparsity, factors,
                    iterations};
  Program program = BuildGnmfProgram(config);

  for (bool exploit : {true, false}) {
    RunConfig run;
    run.block_size = bs;
    run.exploit_dependencies = exploit;
    auto outcome = RunProgram(program, bindings, run);
    if (!outcome.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   outcome.status().ToString().c_str());
      return 1;
    }
    const char* system = exploit ? "DMac      " : "SystemML-S";

    // Reconstruction error ||V - WH||_F relative to ||V||_F.
    auto wh = outcome->result.matrices.at("W").Multiply(
        outcome->result.matrices.at("H"));
    auto diff = v.Subtract(*wh);
    const double rel_err =
        std::sqrt(diff->SumSquares()) / std::sqrt(v.SumSquares());

    std::printf(
        "%s: comm %8.2f MB in %3lld events, %2d stages, "
        "rel. reconstruction error %.3f\n",
        system, outcome->result.stats.comm_bytes() / 1e6,
        static_cast<long long>(outcome->result.stats.comm_events()),
        outcome->plan.num_stages, rel_err);
  }
  return 0;
}
