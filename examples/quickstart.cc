// Quickstart: build a matrix program with the R-like DSL, let DMac plan it,
// run it on the simulated cluster, and inspect results and statistics.
//
//   ./quickstart
#include <cstdio>

#include "apps/runner.h"
#include "data/synthetic.h"

using namespace dmac;

int main() {
  // 1. Describe the computation. Loads declare shape and sparsity (used by
  //    the worst-case size estimator); everything else is inferred.
  ProgramBuilder pb;
  Mat a = pb.Load("A", {2000, 1500}, /*sparsity=*/0.05);
  Mat b = pb.Load("B", {1500, 200}, /*sparsity=*/1.0);
  Mat c = pb.Var("C");
  pb.Assign(c, a.mm(b));           // C = A %*% B
  Mat gram = pb.Var("G");
  pb.Assign(gram, c.t().mm(c));    // G = C^T %*% C  (transpose is free!)
  Scl total = pb.ScalarVar("total", 0.0);
  pb.Assign(total, gram.Sum());
  pb.Output(gram);
  pb.OutputScalar(total);
  Program program = pb.Build();

  // 2. Provide the input data (any blocked LocalMatrix).
  const int64_t block_size = 512;
  LocalMatrix a_data = SyntheticSparse(2000, 1500, 0.05, block_size, 1);
  LocalMatrix b_data = SyntheticDense(1500, 200, block_size, 2);
  Bindings bindings{{"A", &a_data}, {"B", &b_data}};

  // 3. Plan + execute. RunConfig.exploit_dependencies=false would switch to
  //    the SystemML-S baseline planner for comparison.
  RunConfig config;
  config.num_workers = 4;
  config.block_size = block_size;
  auto outcome = RunProgram(program, bindings, config);
  if (!outcome.ok()) {
    std::fprintf(stderr, "error: %s\n", outcome.status().ToString().c_str());
    return 1;
  }

  // 4. Inspect the plan DMac generated (stages, schemes, extended ops).
  std::printf("=== execution plan ===\n%s\n", outcome->plan.ToString().c_str());

  // 5. Results and runtime statistics.
  const LocalMatrix& g = outcome->result.matrices.at("G");
  std::printf("G is %lld x %lld, sum of entries = %.1f\n",
              static_cast<long long>(g.rows()),
              static_cast<long long>(g.cols()),
              outcome->result.scalars.at("total"));
  std::printf("communication: %.2f MB in %lld events, %d stages\n",
              outcome->result.stats.comm_bytes() / 1e6,
              static_cast<long long>(outcome->result.stats.comm_events()),
              outcome->plan.num_stages);
  return 0;
}
