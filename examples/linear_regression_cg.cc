// Conjugate-gradient linear regression (paper Code 4) on a synthetic sparse
// design matrix: fits (VᵀV + λI) w = Vᵀy and prints residual convergence.
//
//   ./linear_regression_cg [examples] [features]
#include <cstdio>
#include <cstdlib>

#include "apps/linear_regression.h"
#include "apps/runner.h"
#include "data/synthetic.h"
#include "runtime/block_size.h"

using namespace dmac;

int main(int argc, char** argv) {
  const int64_t examples = argc > 1 ? std::atoll(argv[1]) : 20000;
  const int64_t features = argc > 2 ? std::atoll(argv[2]) : 2000;
  const double sparsity = 0.005;

  std::printf("Linear regression: V %lld x %lld (sparsity %.2f%%)\n",
              static_cast<long long>(examples),
              static_cast<long long>(features), 100 * sparsity);

  const int64_t bs = ChooseBlockSize({examples, features}, 4, 2);
  LocalMatrix v = SyntheticSparse(examples, features, sparsity, bs, 5);
  LocalMatrix y = SyntheticDense(examples, 1, bs, 6);
  Bindings bindings{{"V", &v}, {"y", &y}};

  std::printf("%6s | %14s\n", "iters", "||r||^2");
  std::printf("-------+---------------\n");
  for (int iterations : {1, 2, 4, 8, 16}) {
    LinRegConfig config{examples, features, sparsity, iterations, 1e-6};
    RunConfig run;
    run.block_size = bs;
    auto outcome = RunProgram(BuildLinearRegressionProgram(config), bindings,
                              run);
    if (!outcome.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   outcome.status().ToString().c_str());
      return 1;
    }
    std::printf("%6d | %14.4e\n", iterations,
                outcome->result.scalars.at("norm_r2"));
  }
  std::printf("\nThe residual norm decreases as CG converges; V was "
              "partitioned exactly once across all runs' plans.\n");
  return 0;
}
